#include "obs/metrics.h"

#include <atomic>
#include <bit>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace fgad::obs {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

namespace {

std::atomic<double> g_ns_per_tick{0.0};  // 0 = not yet calibrated

}  // namespace

void calibrate_tick_clock() {
  static std::once_flag once;
  std::call_once(once, [] {
    const std::uint64_t ns0 = now_ns();
    const std::uint64_t t0 = now_ticks();
    std::uint64_t ns1 = ns0;
    std::uint64_t t1 = t0;
    // A ~200 µs window keeps the ratio error from the ~25 ns clock-read
    // jitter below 0.05% while staying invisible inside process startup.
    do {
      ns1 = now_ns();
      t1 = now_ticks();
    } while (ns1 - ns0 < 200'000);
    g_ns_per_tick.store(t1 == t0 ? 1.0
                                 : static_cast<double>(ns1 - ns0) /
                                       static_cast<double>(t1 - t0),
                        std::memory_order_relaxed);
  });
}

std::uint64_t ticks_to_ns(std::uint64_t ticks) {
  double r = g_ns_per_tick.load(std::memory_order_relaxed);
  if (r == 0.0) {
    calibrate_tick_clock();
    r = g_ns_per_tick.load(std::memory_order_relaxed);
  }
  return static_cast<std::uint64_t>(static_cast<double>(ticks) * r);
}

std::size_t Histogram::bucket_of(std::uint64_t v) {
  if (v < 16) {
    return static_cast<std::size_t>(v);
  }
  // v in [2^k, 2^(k+1)), k >= 4: exponent group k-4, linear sub-bucket
  // from the 4 bits below the leading one.
  const unsigned k = static_cast<unsigned>(std::bit_width(v)) - 1;
  const std::size_t sub = static_cast<std::size_t>((v >> (k - 4)) - 16);
  return 16 + (static_cast<std::size_t>(k) - 4) * 16 + sub;
}

std::uint64_t Histogram::bucket_lower(std::size_t idx) {
  if (idx < 16) {
    return idx;
  }
  const std::size_t e = (idx - 16) / 16;
  const std::size_t sub = (idx - 16) % 16;
  return (16 + static_cast<std::uint64_t>(sub)) << e;
}

namespace {

/// Shared quantile kernel over any bucket-count array laid out with the
/// Histogram bucket geometry (used by both the live histogram and
/// windowed Snapshot deltas).
double quantile_over(const std::uint64_t* counts, std::size_t n_buckets,
                     std::uint64_t total, double p) {
  if (total == 0) {
    return 0;
  }
  if (p < 0) p = 0;
  if (p > 1) p = 1;
  const double rank = p * static_cast<double>(total);
  double cum = 0;
  for (std::size_t i = 0; i < n_buckets; ++i) {
    if (counts[i] == 0) {
      continue;
    }
    const double next = cum + static_cast<double>(counts[i]);
    if (next >= rank) {
      const double lo = static_cast<double>(Histogram::bucket_lower(i));
      const double hi = i + 1 < n_buckets
                            ? static_cast<double>(Histogram::bucket_lower(i + 1))
                            : lo * 2;
      const double frac = (rank - cum) / static_cast<double>(counts[i]);
      return lo + (hi - lo) * frac;
    }
    cum = next;
  }
  return static_cast<double>(Histogram::bucket_lower(n_buckets - 1));
}

}  // namespace

double Histogram::quantile(double p) const {
  std::array<std::uint64_t, kBucketCount> counts;
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  return quantile_over(counts.data(), kBucketCount, total, p);
}

Histogram::Snapshot Histogram::snapshot(bool with_buckets) const {
  Snapshot s;
  if (with_buckets) {
    s.buckets.resize(kBucketCount);
    for (std::size_t i = 0; i < kBucketCount; ++i) {
      s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
      s.count += s.buckets[i];
    }
    s.sum = sum();
    s.recompute_quantiles();
    return s;
  }
  s.count = count();
  s.sum = sum();
  s.p50 = quantile(0.50);
  s.p95 = quantile(0.95);
  s.p99 = quantile(0.99);
  return s;
}

void Histogram::Snapshot::merge(const Snapshot& other) {
  count += other.count;
  sum += other.sum;
  if (other.buckets.empty()) {
    return;
  }
  if (buckets.empty()) {
    buckets = other.buckets;
    return;
  }
  for (std::size_t i = 0; i < buckets.size() && i < other.buckets.size();
       ++i) {
    buckets[i] += other.buckets[i];
  }
}

void Histogram::Snapshot::subtract(const Snapshot& other) {
  count = count > other.count ? count - other.count : 0;
  sum = sum > other.sum ? sum - other.sum : 0;
  for (std::size_t i = 0; i < buckets.size() && i < other.buckets.size();
       ++i) {
    buckets[i] = buckets[i] > other.buckets[i] ? buckets[i] - other.buckets[i]
                                               : 0;
  }
}

double Histogram::Snapshot::quantile(double p) const {
  if (buckets.empty()) {
    return 0;
  }
  std::uint64_t total = 0;
  for (std::uint64_t c : buckets) {
    total += c;
  }
  return quantile_over(buckets.data(), buckets.size(), total, p);
}

void Histogram::Snapshot::recompute_quantiles() {
  p50 = quantile(0.50);
  p95 = quantile(0.95);
  p99 = quantile(0.99);
}

ScopedTimer::ScopedTimer(Histogram& h) : h_(enabled() ? &h : nullptr) {
  if (h_ != nullptr) {
    start_ns_ = now_ns();
  }
}

ScopedTimer::~ScopedTimer() {
  if (h_ != nullptr) {
    h_->observe(now_ns() - start_ns_);
  }
}

std::uint64_t ScopedTimer::elapsed_ns() const {
  return h_ == nullptr ? 0 : now_ns() - start_ns_;
}

Registry& Registry::instance() {
  static Registry r;
  return r;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

namespace {
void append_num(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}
void append_num(std::string& out, std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(v));
  out += buf;
}
void append_num(std::string& out, std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  out += buf;
}
}  // namespace

std::string Registry::render_text() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  out.reserve(4096);
  for (const auto& [name, c] : counters_) {
    out += "# TYPE " + name + " counter\n" + name + " ";
    append_num(out, c->value());
    out += "\n";
  }
  for (const auto& [name, g] : gauges_) {
    out += "# TYPE " + name + " gauge\n" + name + " ";
    append_num(out, g->value());
    out += "\n";
  }
  for (const auto& [name, h] : histograms_) {
    const Histogram::Snapshot s = h->snapshot();
    out += "# TYPE " + name + " summary\n";
    out += name + "{quantile=\"0.5\"} ";
    append_num(out, s.p50);
    out += "\n" + name + "{quantile=\"0.95\"} ";
    append_num(out, s.p95);
    out += "\n" + name + "{quantile=\"0.99\"} ";
    append_num(out, s.p99);
    out += "\n" + name + "_sum ";
    append_num(out, s.sum);
    out += "\n" + name + "_count ";
    append_num(out, s.count);
    out += "\n";
  }
  return out;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    const auto u = static_cast<unsigned char>(ch);
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (u < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", u);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

std::string Registry::render_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + json_escape(name) + "\":";
    append_num(out, c->value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + json_escape(name) + "\":";
    append_num(out, g->value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ",";
    first = false;
    const Histogram::Snapshot s = h->snapshot();
    out += "\"" + json_escape(name) + "\":{\"count\":";
    append_num(out, s.count);
    out += ",\"sum_ns\":";
    append_num(out, s.sum);
    out += ",\"p50_ns\":";
    append_num(out, s.p50);
    out += ",\"p95_ns\":";
    append_num(out, s.p95);
    out += ",\"p99_ns\":";
    append_num(out, s.p99);
    out += "}";
  }
  out += "}}";
  return out;
}

std::vector<std::pair<std::string, const Counter*>> Registry::all_counters()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, const Counter*>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    out.emplace_back(name, c.get());
  }
  return out;
}

std::vector<std::pair<std::string, const Gauge*>> Registry::all_gauges()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, const Gauge*>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    out.emplace_back(name, g.get());
  }
  return out;
}

std::vector<std::pair<std::string, const Histogram*>> Registry::all_histograms()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, const Histogram*>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    out.emplace_back(name, h.get());
  }
  return out;
}

// ---- readiness -------------------------------------------------------------

Readiness& Readiness::instance() {
  static Readiness r;
  return r;
}

void Readiness::set(std::string_view condition, bool blocked,
                    std::string_view reason) {
  std::lock_guard<std::mutex> lock(mu_);
  if (blocked) {
    blocked_[std::string(condition)] = std::string(reason);
  } else {
    const auto it = blocked_.find(condition);
    if (it != blocked_.end()) {
      blocked_.erase(it);
    }
  }
}

bool Readiness::ready() const {
  std::lock_guard<std::mutex> lock(mu_);
  return blocked_.empty();
}

std::string Readiness::render_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out =
      blocked_.empty() ? "{\"ready\":true,\"reasons\":{"
                       : "{\"ready\":false,\"reasons\":{";
  bool first = true;
  for (const auto& [cond, reason] : blocked_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + json_escape(cond) + "\":\"" + json_escape(reason) + "\"";
  }
  out += "}}";
  return out;
}

void Registry::reset_all() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) {
    c->reset();
  }
  for (auto& [name, g] : gauges_) {
    g->reset();
  }
  for (auto& [name, h] : histograms_) {
    h->reset();
  }
}

}  // namespace fgad::obs
