// Process-wide metrics: monotonic counters, gauges, and fixed-bucket
// latency histograms with quantile extraction (DESIGN.md §12).
//
// Design constraints, in order:
//   1. The hot path must be one relaxed fetch-add — no locks, no
//      allocation, no syscalls. Counters shard across cache lines so
//      concurrent writers do not bounce one line.
//   2. Everything is compiled in but near-free when disabled:
//      `Metrics::disable()` turns every inc/observe into a single relaxed
//      atomic load and a branch.
//   3. Instruments have stable addresses for the life of the process, so
//      call sites cache `Counter&` in a function-local static and skip the
//      registry lookup forever after.
//
// Exposition: `Registry::render_text()` emits a Prometheus-style text page
// (histograms as summaries with p50/p95/p99), `render_json()` the same
// data as one JSON object. Both are served by obs::MetricsHttpServer.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace fgad::obs {

namespace detail {
inline std::atomic<bool> g_enabled{true};
}  // namespace detail

/// Global kill switch. Relaxed: a stale read just drops or records one
/// extra sample around the toggle, which is fine for telemetry.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

struct Metrics {
  static void enable() {
    detail::g_enabled.store(true, std::memory_order_relaxed);
  }
  static void disable() {
    detail::g_enabled.store(false, std::memory_order_relaxed);
  }
};

/// Monotonic counter, sharded so concurrent increments from different
/// threads land on different cache lines.
class Counter {
 public:
  static constexpr std::size_t kShards = 8;

  void inc(std::uint64_t n = 1) {
    if (!enabled()) {
      return;
    }
    shards_[shard_index()].v.fetch_add(n, std::memory_order_relaxed);
  }

  std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const Shard& s : shards_) {
      total += s.v.load(std::memory_order_relaxed);
    }
    return total;
  }

  /// Zeroes the counter (tests / bench resets only; not atomic as a whole).
  void reset() {
    for (Shard& s : shards_) {
      s.v.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };

  /// Threads pick a fixed shard round-robin at first use.
  static std::size_t shard_index() {
    static std::atomic<std::size_t> next{0};
    thread_local const std::size_t idx =
        next.fetch_add(1, std::memory_order_relaxed) % kShards;
    return idx;
  }

  std::array<Shard, kShards> shards_;
};

/// A point-in-time value (worker occupancy, queue depth, ...).
class Gauge {
 public:
  void set(std::int64_t v) {
    if (!enabled()) {
      return;
    }
    v_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t d) {
    if (!enabled()) {
      return;
    }
    v_.fetch_add(d, std::memory_order_relaxed);
  }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Fixed-bucket log-linear histogram for latency samples in nanoseconds.
//
// Bucket layout: values < 16 are exact; above that each power of two is
// split into 16 linear sub-buckets, so the relative quantile error is
// bounded by 1/16 ≈ 6% at any magnitude. Recording is a relaxed
// fetch-add on one bucket plus one on the sum — no locks.
class Histogram {
 public:
  // 16 exact buckets + 16 sub-buckets for each exponent 4..63.
  static constexpr std::size_t kBucketCount = 16 + 16 * 60;

  void observe(std::uint64_t v) {
    if (!enabled()) {
      return;
    }
    buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  std::uint64_t count() const {
    std::uint64_t total = 0;
    for (const auto& b : buckets_) {
      total += b.load(std::memory_order_relaxed);
    }
    return total;
  }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }

  /// Quantile estimate (p in [0,1]) with linear interpolation inside the
  /// containing bucket. Returns 0 when empty.
  double quantile(double p) const;

  struct Snapshot {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    double p50 = 0;
    double p95 = 0;
    double p99 = 0;
    // Full per-bucket counts (size kBucketCount) when captured with
    // snapshot(/*with_buckets=*/true); empty otherwise. Carrying the
    // buckets is what makes snapshots an abelian group: the windowed
    // registry subtracts consecutive cumulative snapshots to get
    // per-interval deltas and merges deltas back into window totals
    // (DESIGN.md §17).
    std::vector<std::uint64_t> buckets;

    /// Adds `other` into this snapshot (counts, sum, buckets). Both
    /// sides must carry buckets unless one is empty.
    void merge(const Snapshot& other);
    /// Subtracts `other` (an earlier cumulative snapshot of the same
    /// histogram) from this one. Clamps at zero per bucket, so a racing
    /// writer can never produce an underflowed window.
    void subtract(const Snapshot& other);
    /// Quantile over the carried buckets (0 when empty or bucket-less).
    double quantile(double p) const;
    /// Refreshes p50/p95/p99 from the carried buckets.
    void recompute_quantiles();
  };
  Snapshot snapshot(bool with_buckets = false) const;

  void reset() {
    for (auto& b : buckets_) {
      b.store(0, std::memory_order_relaxed);
    }
    sum_.store(0, std::memory_order_relaxed);
  }

  static std::size_t bucket_of(std::uint64_t v);
  /// Inclusive lower bound of bucket `idx`.
  static std::uint64_t bucket_lower(std::size_t idx);

 private:
  std::array<std::atomic<std::uint64_t>, kBucketCount> buckets_{};
  std::atomic<std::uint64_t> sum_{0};
};

/// RAII timer feeding a histogram in nanoseconds. The clock is only read
/// when metrics are enabled at construction time.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& h);
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Nanoseconds elapsed so far (0 when metrics were disabled at start).
  std::uint64_t elapsed_ns() const;

 private:
  Histogram* h_;
  std::uint64_t start_ns_ = 0;
};

/// Monotonic wall clock in nanoseconds (steady_clock).
std::uint64_t now_ns();

/// Raw CPU tick counter for span/cost timing (DESIGN.md §19): a traced
/// request reads the clock twice per span, and at that rate the ~25 ns
/// vDSO clock_gettime dominates the instrumentation cost. rdtsc (x86) or
/// cntvct_el0 (arm64) reads in single-digit nanoseconds; ticks convert to
/// nanoseconds via the one-shot calibrated ratio in ticks_to_ns(). Falls
/// back to now_ns() (ratio 1) on other targets.
inline std::uint64_t now_ticks() {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  return __builtin_ia32_rdtsc();
#elif defined(__aarch64__) && (defined(__GNUC__) || defined(__clang__))
  std::uint64_t v;
  asm volatile("mrs %0, cntvct_el0" : "=r"(v));
  return v;
#else
  return now_ns();
#endif
}

/// Converts a tick delta from now_ticks() to nanoseconds. Calibrates
/// lazily if calibrate_tick_clock() has not run yet.
std::uint64_t ticks_to_ns(std::uint64_t ticks);

/// One-shot (~200 µs spin) measurement of the tick clock's rate against
/// now_ns(). Idempotent and thread-safe; trace_begin() and
/// CostLedger::set_enabled(true) call it so the spin lands in setup, not
/// on a request path.
void calibrate_tick_clock();

/// JSON string-body escaping shared by every exposition surface
/// (/metrics.json, /vars.json, /readyz): `"` and `\` get a backslash,
/// control characters become \uXXXX. Metric names are caller-chosen
/// strings, so emitting them unescaped would let one odd name corrupt
/// the whole document.
std::string json_escape(std::string_view s);

/// Process-wide readiness state: a set of named conditions that block
/// serving (recovery replay in progress, shutdown checkpoint mid-flight,
/// sustained SLO overload). /healthz stays a cheap liveness probe;
/// /readyz returns 503 with these reasons while any condition is set.
class Readiness {
 public:
  static Readiness& instance();

  /// Sets (blocked=true, with a human-readable reason) or clears
  /// (blocked=false) one named condition.
  void set(std::string_view condition, bool blocked,
           std::string_view reason = "");
  bool ready() const;
  /// {"ready":bool,"reasons":{"condition":"reason",...}}
  std::string render_json() const;

  /// RAII guard: blocks `condition` for its lifetime.
  class Block {
   public:
    Block(std::string_view condition, std::string_view reason)
        : condition_(condition) {
      Readiness::instance().set(condition_, true, reason);
    }
    ~Block() { Readiness::instance().set(condition_, false); }
    Block(const Block&) = delete;
    Block& operator=(const Block&) = delete;

   private:
    std::string condition_;
  };

 private:
  Readiness() = default;
  mutable std::mutex mu_;
  std::map<std::string, std::string, std::less<>> blocked_;
};

/// Name → instrument map. Lookups take a mutex; instruments have stable
/// addresses, so call sites cache the reference:
///
///   static obs::Counter& c =
///       obs::Registry::instance().counter("fgad_..._total");
///   c.inc();
///
/// Naming scheme (DESIGN.md §12): fgad_<subsystem>_<what>[_<unit>], with
/// `_total` for counters and `_ns` for latency histograms.
class Registry {
 public:
  static Registry& instance();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Prometheus-style text exposition (counters/gauges as-is, histograms
  /// as summaries with quantile labels).
  std::string render_text() const;
  /// The same data as a single JSON object.
  std::string render_json() const;

  /// Stable-address instrument listings, sorted by name. The pointers
  /// stay valid for the life of the process (instruments are never
  /// destroyed), so the windowed registry can hold them across ticks.
  std::vector<std::pair<std::string, const Counter*>> all_counters() const;
  std::vector<std::pair<std::string, const Gauge*>> all_gauges() const;
  std::vector<std::pair<std::string, const Histogram*>> all_histograms() const;

  /// Zeroes every instrument without invalidating references (tests).
  void reset_all();

 private:
  Registry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace fgad::obs
