// Windowed time-series layer over the metrics registry (DESIGN.md §17).
//
// The base registry (metrics.h) is cumulative: counters and histograms
// only ever grow, so "p99 over the last minute" or "current qps" need an
// external scraper to difference consecutive scrapes. WindowedRegistry
// makes those queries answerable in-process: a rotation tick (default
// every 1s) takes a cumulative snapshot of every registered instrument,
// subtracts the previous snapshot (Histogram::Snapshot::subtract), and
// stores the per-interval delta in a ring of slots (default 300 — five
// minutes of 1s resolution). A window query merges the most recent slots
// back into one Snapshot (Histogram::Snapshot::merge) and recomputes
// quantiles over the merged buckets.
//
// Two-level ring: every `coarse_factor` fine slots (default 60) are
// folded into one coarse slot (default 120 of them — two hours at 1m
// resolution), so multi-window SLO burn rates (5m fine / 1h coarse) come
// from real history, not extrapolation. A query picks the fine ring when
// it covers the requested window and falls back to coarse + the current
// partial group otherwise.
//
// Cost model: instrument hot paths are untouched — writers keep doing
// their one relaxed fetch-add against the base registry; all windowing
// work happens on the rotation tick (one pass over the registry per
// second). Histogram deltas are stored sparsely (only buckets that moved
// during the interval), so an idle server's ring is near-empty.
//
// Exposition: render_vars_json() is served at GET /vars.json?window=60s.
// Tests drive tick() directly for determinism; servers call start() for
// a background ticker thread.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace fgad::obs {

class WindowedRegistry {
 public:
  struct Options {
    std::uint64_t interval_ns = 1'000'000'000;  // fine slot width
    std::size_t slots = 300;          // fine ring length (5 min at 1s)
    std::size_t coarse_factor = 60;   // fine slots folded per coarse slot
    std::size_t coarse_slots = 120;   // coarse ring length (2 h at 1 min)
  };

  static WindowedRegistry& instance();

  /// Re-arms the ring with new geometry and drops all accumulated
  /// history. Not valid while the background ticker is running.
  void configure(Options opts);
  Options options() const;

  /// Advances one fine slot: snapshots every instrument in the base
  /// Registry, stores the delta since the previous tick, and folds a
  /// coarse slot when a group completes. Tests call this directly;
  /// start() drives it from a background thread every interval.
  void tick();
  /// Fine ticks since configure().
  std::uint64_t ticks() const;

  /// Runs tick() every interval on a background thread. Idempotent.
  void start();
  void stop();
  bool running() const;

  /// Invoked after every tick(), outside the registry lock — the SLO
  /// tracker hangs its evaluation here.
  void set_tick_hook(std::function<void()> hook);

  struct CounterWindow {
    std::uint64_t delta = 0;   // increments inside the window
    double covered_s = 0;      // seconds of history actually merged
    double rate_per_s = 0;
  };
  struct GaugeWindow {
    std::int64_t last = 0;     // newest recorded value
    double avg = 0;            // mean of per-slot values in the window
    double covered_s = 0;
  };
  struct HistogramWindow {
    Histogram::Snapshot delta;  // merged buckets, quantiles recomputed
    double covered_s = 0;
    double rate_per_s = 0;      // samples per second inside the window
  };

  /// Window queries: merge the most recent completed slots spanning at
  /// least `window_s` seconds (clamped to available history). Returns
  /// nullopt for instruments the rotation has not seen yet.
  std::optional<CounterWindow> counter_window(std::string_view name,
                                              std::uint64_t window_s) const;
  std::optional<GaugeWindow> gauge_window(std::string_view name,
                                          std::uint64_t window_s) const;
  std::optional<HistogramWindow> histogram_window(
      std::string_view name, std::uint64_t window_s) const;

  /// One JSON document with every instrument's windowed view:
  /// {"window_s":..,"covered_s":..,"counters":{name:{"delta","rate_per_s"}},
  ///  "gauges":{name:{"value","avg"}},
  ///  "histograms":{name:{"count","rate_per_s","sum_ns","p50_ns",...}}}
  std::string render_vars_json(std::uint64_t window_s) const;

 private:
  WindowedRegistry() = default;

  /// Sparse per-interval histogram delta: only the buckets that moved.
  struct HistDelta {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::vector<std::pair<std::uint32_t, std::uint64_t>> nz;

    void clear() {
      count = 0;
      sum = 0;
      nz.clear();
    }
    void add_into(Histogram::Snapshot& s) const {
      s.count += count;
      s.sum += sum;
      for (const auto& [idx, c] : nz) {
        if (idx < s.buckets.size()) {
          s.buckets[idx] += c;
        }
      }
    }
    void fold(const HistDelta& other);  // accumulate another delta
  };

  struct CounterState {
    const Counter* src = nullptr;
    std::uint64_t prev = 0;
    std::vector<std::uint64_t> fine;
    std::vector<std::uint64_t> coarse;
    std::uint64_t coarse_accum = 0;
  };
  struct GaugeState {
    const Gauge* src = nullptr;
    std::vector<std::int64_t> fine;
    std::vector<std::int64_t> coarse;
  };
  struct HistState {
    const Histogram* src = nullptr;
    Histogram::Snapshot prev;  // cumulative, with buckets
    std::vector<HistDelta> fine;
    std::vector<HistDelta> coarse;
    HistDelta coarse_accum;
  };

  /// How many most-recent slots of a ring to merge for `window_s`, and
  /// the covered duration. ticks = fine ticks so far.
  struct Span {
    bool use_fine = true;
    std::size_t n = 0;           // slots to merge from the chosen ring
    std::size_t partial = 0;     // fine slots of the open coarse group
    double covered_s = 0;
  };
  Span plan_span(std::uint64_t window_s) const;  // callers hold mu_

  // Merge helpers over one instrument's rings for a planned span; all
  // callers hold mu_.
  std::uint64_t merge_counter(const CounterState& st, const Span& sp) const;
  double merge_gauge_avg(const GaugeState& st, const Span& sp) const;
  Histogram::Snapshot merge_hist(const HistState& st, const Span& sp) const;

  void loop();

  mutable std::mutex mu_;
  Options opts_;
  std::uint64_t ticks_ = 0;
  std::map<std::string, CounterState, std::less<>> counters_;
  std::map<std::string, GaugeState, std::less<>> gauges_;
  std::map<std::string, HistState, std::less<>> hists_;
  std::function<void()> tick_hook_;

  std::mutex run_mu_;
  std::condition_variable run_cv_;
  bool stop_requested_ = false;
  std::atomic<bool> running_{false};
  std::thread thread_;
};

}  // namespace fgad::obs
