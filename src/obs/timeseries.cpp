#include "obs/timeseries.h"

#include <algorithm>
#include <cstdio>

namespace fgad::obs {

WindowedRegistry& WindowedRegistry::instance() {
  static WindowedRegistry w;
  return w;
}

void WindowedRegistry::HistDelta::fold(const HistDelta& other) {
  count += other.count;
  sum += other.sum;
  // Duplicate bucket indices are fine: add_into() is additive, so two
  // entries for one bucket merge correctly on the query side.
  nz.insert(nz.end(), other.nz.begin(), other.nz.end());
}

void WindowedRegistry::configure(Options opts) {
  if (running_.load(std::memory_order_acquire)) {
    return;  // geometry changes require a stopped ticker
  }
  if (opts.interval_ns == 0) opts.interval_ns = 1;
  if (opts.slots == 0) opts.slots = 1;
  if (opts.coarse_factor == 0) opts.coarse_factor = 1;
  if (opts.coarse_slots == 0) opts.coarse_slots = 1;
  std::lock_guard<std::mutex> lock(mu_);
  opts_ = opts;
  ticks_ = 0;
  counters_.clear();
  gauges_.clear();
  hists_.clear();
}

WindowedRegistry::Options WindowedRegistry::options() const {
  std::lock_guard<std::mutex> lock(mu_);
  return opts_;
}

std::uint64_t WindowedRegistry::ticks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ticks_;
}

void WindowedRegistry::set_tick_hook(std::function<void()> hook) {
  std::lock_guard<std::mutex> lock(mu_);
  tick_hook_ = std::move(hook);
}

void WindowedRegistry::tick() {
  std::function<void()> hook;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Registry& reg = Registry::instance();
    const std::size_t pos = ticks_ % opts_.slots;
    const bool close_group = (ticks_ + 1) % opts_.coarse_factor == 0;
    const std::size_t cpos =
        (ticks_ / opts_.coarse_factor) % opts_.coarse_slots;

    for (const auto& [name, c] : reg.all_counters()) {
      auto it = counters_.find(name);
      if (it == counters_.end()) {
        // First sighting: baseline at the current cumulative value so
        // pre-registration history does not land in one slot.
        CounterState st;
        st.src = c;
        st.prev = c->value();
        st.fine.assign(opts_.slots, 0);
        st.coarse.assign(opts_.coarse_slots, 0);
        it = counters_.emplace(name, std::move(st)).first;
      } else {
        CounterState& st = it->second;
        const std::uint64_t cur = c->value();
        const std::uint64_t delta = cur >= st.prev ? cur - st.prev : 0;
        st.prev = cur;
        st.fine[pos] = delta;
        st.coarse_accum += delta;
      }
      if (close_group) {
        CounterState& st = it->second;
        st.coarse[cpos] = st.coarse_accum;
        st.coarse_accum = 0;
      }
    }

    for (const auto& [name, g] : reg.all_gauges()) {
      auto it = gauges_.find(name);
      if (it == gauges_.end()) {
        GaugeState st;
        st.src = g;
        st.fine.assign(opts_.slots, 0);
        st.coarse.assign(opts_.coarse_slots, 0);
        it = gauges_.emplace(name, std::move(st)).first;
      }
      GaugeState& st = it->second;
      st.fine[pos] = g->value();
      if (close_group) {
        st.coarse[cpos] = st.fine[pos];
      }
    }

    for (const auto& [name, h] : reg.all_histograms()) {
      auto it = hists_.find(name);
      if (it == hists_.end()) {
        HistState st;
        st.src = h;
        st.prev = h->snapshot(/*with_buckets=*/true);
        st.fine.assign(opts_.slots, HistDelta{});
        st.coarse.assign(opts_.coarse_slots, HistDelta{});
        it = hists_.emplace(name, std::move(st)).first;
        it->second.fine[pos].clear();
      } else {
        HistState& st = it->second;
        Histogram::Snapshot cur = h->snapshot(/*with_buckets=*/true);
        Histogram::Snapshot diff = cur;
        diff.subtract(st.prev);
        st.prev = std::move(cur);
        HistDelta d;
        d.count = diff.count;
        d.sum = diff.sum;
        for (std::size_t i = 0; i < diff.buckets.size(); ++i) {
          if (diff.buckets[i] != 0) {
            d.nz.emplace_back(static_cast<std::uint32_t>(i),
                              diff.buckets[i]);
          }
        }
        st.coarse_accum.fold(d);
        st.fine[pos] = std::move(d);
      }
      if (close_group) {
        HistState& st = it->second;
        st.coarse[cpos] = std::move(st.coarse_accum);
        st.coarse_accum.clear();
      }
    }

    ++ticks_;
    hook = tick_hook_;
  }
  if (hook) {
    hook();
  }
}

WindowedRegistry::Span WindowedRegistry::plan_span(
    std::uint64_t window_s) const {
  Span sp;
  const std::uint64_t window_ns = window_s * 1'000'000'000ull;
  std::size_t want = static_cast<std::size_t>(
      (window_ns + opts_.interval_ns - 1) / opts_.interval_ns);
  if (want == 0) {
    want = 1;
  }
  const std::size_t filled =
      static_cast<std::size_t>(std::min<std::uint64_t>(ticks_, opts_.slots));
  const double interval_s =
      static_cast<double>(opts_.interval_ns) / 1e9;
  if (want <= opts_.slots) {
    sp.use_fine = true;
    sp.n = std::min(want, filled);
    sp.covered_s = static_cast<double>(sp.n) * interval_s;
    return sp;
  }
  sp.use_fine = false;
  const std::size_t closed = static_cast<std::size_t>(
      ticks_ / opts_.coarse_factor);
  const std::size_t cfilled = std::min(closed, opts_.coarse_slots);
  const std::size_t cwant =
      (want + opts_.coarse_factor - 1) / opts_.coarse_factor;
  sp.n = std::min(cwant, cfilled);
  sp.partial = static_cast<std::size_t>(ticks_ % opts_.coarse_factor);
  sp.covered_s = static_cast<double>(sp.n * opts_.coarse_factor + sp.partial) *
                 interval_s;
  return sp;
}

std::uint64_t WindowedRegistry::merge_counter(const CounterState& st,
                                              const Span& sp) const {
  std::uint64_t delta = 0;
  if (sp.use_fine) {
    for (std::size_t i = 0; i < sp.n; ++i) {
      delta += st.fine[(ticks_ - 1 - i) % opts_.slots];
    }
    return delta;
  }
  const std::size_t closed =
      static_cast<std::size_t>(ticks_ / opts_.coarse_factor);
  for (std::size_t i = 0; i < sp.n; ++i) {
    delta += st.coarse[(closed - 1 - i) % opts_.coarse_slots];
  }
  // The open coarse group is exactly coarse_accum.
  delta += st.coarse_accum;
  return delta;
}

double WindowedRegistry::merge_gauge_avg(const GaugeState& st,
                                         const Span& sp) const {
  double total = 0;
  std::size_t n = 0;
  if (sp.use_fine) {
    for (std::size_t i = 0; i < sp.n; ++i) {
      total += static_cast<double>(st.fine[(ticks_ - 1 - i) % opts_.slots]);
      ++n;
    }
  } else {
    const std::size_t closed =
        static_cast<std::size_t>(ticks_ / opts_.coarse_factor);
    for (std::size_t i = 0; i < sp.n; ++i) {
      total +=
          static_cast<double>(st.coarse[(closed - 1 - i) % opts_.coarse_slots]);
      ++n;
    }
    for (std::size_t j = 0; j < sp.partial; ++j) {
      total += static_cast<double>(st.fine[(ticks_ - 1 - j) % opts_.slots]);
      ++n;
    }
  }
  return n == 0 ? 0 : total / static_cast<double>(n);
}

Histogram::Snapshot WindowedRegistry::merge_hist(const HistState& st,
                                                 const Span& sp) const {
  Histogram::Snapshot s;
  s.buckets.assign(Histogram::kBucketCount, 0);
  if (sp.use_fine) {
    for (std::size_t i = 0; i < sp.n; ++i) {
      st.fine[(ticks_ - 1 - i) % opts_.slots].add_into(s);
    }
  } else {
    const std::size_t closed =
        static_cast<std::size_t>(ticks_ / opts_.coarse_factor);
    for (std::size_t i = 0; i < sp.n; ++i) {
      st.coarse[(closed - 1 - i) % opts_.coarse_slots].add_into(s);
    }
    st.coarse_accum.add_into(s);
  }
  s.recompute_quantiles();
  return s;
}

std::optional<WindowedRegistry::CounterWindow> WindowedRegistry::counter_window(
    std::string_view name, std::uint64_t window_s) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  if (it == counters_.end() || ticks_ == 0) {
    return std::nullopt;
  }
  const Span sp = plan_span(window_s);
  CounterWindow w;
  w.covered_s = sp.covered_s;
  w.delta = merge_counter(it->second, sp);
  w.rate_per_s =
      sp.covered_s > 0 ? static_cast<double>(w.delta) / sp.covered_s : 0;
  return w;
}

std::optional<WindowedRegistry::GaugeWindow> WindowedRegistry::gauge_window(
    std::string_view name, std::uint64_t window_s) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauges_.find(name);
  if (it == gauges_.end() || ticks_ == 0) {
    return std::nullopt;
  }
  const Span sp = plan_span(window_s);
  GaugeWindow w;
  w.covered_s = sp.covered_s;
  w.last = it->second.src->value();
  w.avg = merge_gauge_avg(it->second, sp);
  return w;
}

std::optional<WindowedRegistry::HistogramWindow>
WindowedRegistry::histogram_window(std::string_view name,
                                   std::uint64_t window_s) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = hists_.find(name);
  if (it == hists_.end() || ticks_ == 0) {
    return std::nullopt;
  }
  const Span sp = plan_span(window_s);
  HistogramWindow w;
  w.covered_s = sp.covered_s;
  w.delta = merge_hist(it->second, sp);
  w.rate_per_s = sp.covered_s > 0
                     ? static_cast<double>(w.delta.count) / sp.covered_s
                     : 0;
  return w;
}

namespace {
void append_f(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}
void append_u(std::string& out, std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out += buf;
}
void append_i(std::string& out, std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  out += buf;
}
}  // namespace

std::string WindowedRegistry::render_vars_json(std::uint64_t window_s) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Span sp = plan_span(window_s);
  std::string out;
  out.reserve(8192);
  out += "{\"window_s\":";
  append_u(out, window_s);
  out += ",\"covered_s\":";
  append_f(out, sp.covered_s);
  out += ",\"interval_ns\":";
  append_u(out, opts_.interval_ns);
  out += ",\"ticks\":";
  append_u(out, ticks_);
  out += ",\"counters\":{";
  bool first = true;
  for (const auto& [name, st] : counters_) {
    if (!first) out += ",";
    first = false;
    const std::uint64_t delta = ticks_ == 0 ? 0 : merge_counter(st, sp);
    out += "\"" + json_escape(name) + "\":{\"delta\":";
    append_u(out, delta);
    out += ",\"rate_per_s\":";
    append_f(out, sp.covered_s > 0
                      ? static_cast<double>(delta) / sp.covered_s
                      : 0);
    out += "}";
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, st] : gauges_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + json_escape(name) + "\":{\"value\":";
    append_i(out, st.src->value());
    out += ",\"avg\":";
    append_f(out, ticks_ == 0 ? 0 : merge_gauge_avg(st, sp));
    out += "}";
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, st] : hists_) {
    if (!first) out += ",";
    first = false;
    const Histogram::Snapshot s =
        ticks_ == 0 ? Histogram::Snapshot{} : merge_hist(st, sp);
    out += "\"" + json_escape(name) + "\":{\"count\":";
    append_u(out, s.count);
    out += ",\"rate_per_s\":";
    append_f(out, sp.covered_s > 0
                      ? static_cast<double>(s.count) / sp.covered_s
                      : 0);
    out += ",\"sum_ns\":";
    append_u(out, s.sum);
    out += ",\"p50_ns\":";
    append_f(out, s.p50);
    out += ",\"p95_ns\":";
    append_f(out, s.p95);
    out += ",\"p99_ns\":";
    append_f(out, s.p99);
    out += "}";
  }
  out += "}}";
  return out;
}

// ---- background ticker -----------------------------------------------------

void WindowedRegistry::start() {
  std::lock_guard<std::mutex> lock(run_mu_);
  if (running_.load(std::memory_order_acquire)) {
    return;
  }
  stop_requested_ = false;
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { loop(); });
}

void WindowedRegistry::stop() {
  {
    std::lock_guard<std::mutex> lock(run_mu_);
    if (!running_.load(std::memory_order_acquire)) {
      return;
    }
    stop_requested_ = true;
    run_cv_.notify_all();
  }
  if (thread_.joinable()) {
    thread_.join();
  }
  running_.store(false, std::memory_order_release);
}

bool WindowedRegistry::running() const {
  return running_.load(std::memory_order_acquire);
}

void WindowedRegistry::loop() {
  const std::chrono::nanoseconds interval(options().interval_ns);
  auto next = std::chrono::steady_clock::now() + interval;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(run_mu_);
      if (run_cv_.wait_until(lock, next, [this] { return stop_requested_; })) {
        return;
      }
    }
    tick();
    next += interval;
    // A long scheduling stall must not cause a burst of catch-up ticks
    // (each would record near-zero deltas); re-anchor instead.
    const auto now = std::chrono::steady_clock::now();
    if (next < now) {
      next = now + interval;
    }
  }
}

}  // namespace fgad::obs
