// Cross-process trace stitching + clock-offset estimation (DESIGN.md §19).
//
// Every process renders its spans relative to its own steady clock
// (obs::now_ns()), and steady clocks of different processes — let alone
// different hosts — share no epoch. To merge a peer's trace segment into
// a local timeline we estimate the peer-clock offset NTP-style from
// request/response round trips against the peer's GET /clock endpoint:
//
//   local t0 --- request --->  peer reads its clock: tp
//   local t1 <-- response ---
//
//   offset ≈ tp - (t0 + t1) / 2        (peer_clock - local_clock)
//
// The error of one sample is bounded by half its RTT, so among several
// samples the minimum-RTT one wins (best_offset). Stitching then rewrites
// each peer event's timestamp into the local timeline:
//
//   ts_local = (peer_t0 + ts_peer*1e3 - offset - local_t0) / 1e3   [µs]
//
// using the absolute t0_ns each trace document records in its meta
// object, and shifts the peer's pid lane so processes render separately.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace fgad::obs {

/// One /clock round trip: local send / peer clock reading / local receive,
/// all in nanoseconds (local_* on the local steady clock).
struct ClockSample {
  std::uint64_t local_send_ns = 0;
  std::uint64_t peer_ns = 0;
  std::uint64_t local_recv_ns = 0;
};

/// NTP-style midpoint estimate of (peer_clock - local_clock) from one
/// sample; error bounded by half the sample's RTT.
std::int64_t offset_from_sample(const ClockSample& s);

struct OffsetEstimate {
  std::int64_t offset_ns = 0;  // peer_clock - local_clock
  std::uint64_t rtt_ns = 0;    // RTT of the winning sample = error bound*2
  bool valid = false;
};

/// The minimum-RTT sample's offset (tightest error bound). Samples whose
/// receive precedes their send are ignored; invalid when none survive.
OffsetEstimate best_offset(const std::vector<ClockSample>& samples);

/// The `"t0_ns":<n>` recorded in a trace document's meta object (the
/// absolute local-clock time of trace_begin); 0 when absent.
std::uint64_t trace_doc_t0_ns(const std::string& doc);

/// Merges `peer_doc`'s trace events into `base_doc`: each peer event's
/// ts is skew-corrected into the base timeline via `offset_ns`
/// (peer_clock - base_clock) and its pid is shifted by `pid_delta` so the
/// peer renders as its own process lane. Returns the merged document
/// (base unchanged when either document is unparsable).
std::string trace_stitch(const std::string& base_doc,
                         const std::string& peer_doc,
                         std::int64_t offset_ns, int pid_delta);

}  // namespace fgad::obs
