// Per-request cost accounting (DESIGN.md §19).
//
// A request's wall-clock latency on the server is spent in a handful of
// places — queue/pipeline wait, the WAL append, the (possibly amortized)
// fsync, the replication sync-ack wait, the state-machine apply, and on
// the client side the per-item key derivation. The CostLedger attributes
// each of those buckets to the owning request id as it happens, and the
// server returns the breakdown to the client as the server-timing
// trailer of a kTaggedEnvelopeV2 response (proto::TimingEntry, kind =
// CostKind ordinal).
//
// Attribution rules:
//   - direct waits (inline fsync, sync replication ack) are charged in
//     full to the waiting rid via ScopedCost / add();
//   - batch-amortized work (one group-commit fsync covering n staged
//     mutations, one gate() ack covering a batch) is charged as
//     duration / n to every rid in the batch — the shares sum to the
//     batch's real cost, so per-rid breakdowns stay additive;
//   - queue wait is the time between enqueueing on the group committer
//     and the flush that picked the entry up.
//
// The ledger is disabled by default (a single relaxed atomic guards every
// call); fgad_server enables it at startup. Entries are bounded FIFO —
// an abandoned rid (client never read its trailer) is evicted once
// kMaxEntries newer rids arrive.
#pragma once

#include <array>
#include <cstdint>

namespace fgad::obs {

/// Stable wire codes for the server-timing trailer. Append-only: peers
/// of different versions must agree on the meaning of each ordinal.
enum class CostKind : std::uint8_t {
  kQueueWait = 0,   // group-committer enqueue -> flush pickup
  kWalAppend = 1,   // WAL append (buffer write, CRC, no fsync)
  kFsyncShare = 2,  // fsync wait: full (inline) or amortized batch share
  kReplWait = 3,    // sync replication: wait for the follower's ack share
  kApply = 4,       // state-machine apply (CloudServer::handle_locked)
  kKeyDerive = 5,   // client-side modulated-chain key derivation
  kTotal = 6,       // dispatch -> response ready (informational)
  kCount = 7,
};

const char* cost_kind_name(CostKind k);

/// Process-wide rid -> cost-breakdown table. Writers add nanoseconds
/// under a mutex (the buckets are off the per-item hot path: one add per
/// request per bucket); the response-sealing path takes the whole row.
class CostLedger {
 public:
  static constexpr std::size_t kMaxEntries = 1024;

  struct Breakdown {
    std::array<std::uint64_t, static_cast<std::size_t>(CostKind::kCount)>
        ns{};
    bool any() const {
      for (std::uint64_t v : ns) {
        if (v != 0) {
          return true;
        }
      }
      return false;
    }
  };

  static CostLedger& instance();

  void set_enabled(bool on);
  bool enabled() const;

  /// Charges `ns` to `rid`'s bucket `k`. No-op when disabled or rid == 0.
  void add(std::uint64_t rid, CostKind k, std::uint64_t ns);

  /// Removes and returns rid's row (zeros if absent).
  Breakdown take(std::uint64_t rid);

  /// Drops every row (tests).
  void clear();

 private:
  CostLedger() = default;
  struct Impl;
  static Impl& impl();
};

/// RAII: charges the scope's elapsed time to obs::current_request_id()
/// under `kind`. Free when the ledger is disabled or no rid is active
/// (the clock is not even read).
class ScopedCost {
 public:
  explicit ScopedCost(CostKind kind);
  ~ScopedCost();
  ScopedCost(const ScopedCost&) = delete;
  ScopedCost& operator=(const ScopedCost&) = delete;

 private:
  std::uint64_t rid_ = 0;
  std::uint64_t t0_ = 0;
  CostKind kind_;
};

}  // namespace fgad::obs
