// SLO objectives and multi-window burn-rate tracking (DESIGN.md §17).
//
// An objective names a target over one instrument in the windowed
// registry:
//
//   latency      "p99 of fgad_server_delete_commit_ns < 5ms"
//   error_ratio  "fgad_server_rpc_errors_total / fgad_server_rpcs_total
//                 < 0.1%"
//   gauge_above  "avg(fgad_net_backpressure_paused) < 1"
//
// Burn rate is observed badness divided by budget: for a latency
// objective the budget is 1 - target_quantile (a p99 target tolerates 1%
// of samples over threshold), so burn = bad_fraction / 0.01; for an
// error-ratio objective burn = ratio / max_error_rate; for a gauge it is
// avg / threshold. Burn 1.0 means exactly consuming budget; multi-window
// alerting (the SRE-workbook shape) requires BOTH a short window (default
// 5m — is it bad *now*?) and a long window (default 1h — has it been bad
// long enough to matter?) to exceed `burn_threshold` before an objective
// counts as breaching. Each breach edge increments
// fgad_slo_<name>_breaches_total (+ the aggregate
// fgad_slo_breaches_total) and records a kSloBreach flight-recorder
// event; `overload_evals` consecutive breaching evaluations set the
// "overloaded" readiness condition, which /readyz reports as 503.
//
// Evaluation hangs off WindowedRegistry's tick hook (attach()), so it
// runs once per rotation interval with no extra thread. Tests call
// evaluate() directly after driving tick() by hand.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace fgad::obs {

class SloTracker {
 public:
  enum class Kind : std::uint8_t {
    kLatency = 0,     // quantile of a histogram vs threshold_ns
    kErrorRatio = 1,  // error counter / total counter vs max_error_rate
    kGaugeAbove = 2,  // windowed gauge average vs threshold
  };

  struct Objective {
    std::string name;          // stable slug, used in metric names
    Kind kind = Kind::kLatency;
    std::string metric;        // histogram / gauge / error-counter name
    std::string total_metric;  // kErrorRatio only: denominator counter
    std::uint64_t threshold_ns = 0;   // kLatency: bad above this;
                                      // kGaugeAbove: gauge threshold
    double target_quantile = 0.99;    // kLatency: budget = 1 - this
    double max_error_rate = 0.001;    // kErrorRatio budget
    double burn_threshold = 1.0;      // breach when both burns exceed
    std::uint64_t short_window_s = 300;
    std::uint64_t long_window_s = 3600;
  };

  struct ObjectiveStatus {
    std::string name;
    double short_burn = 0;
    double long_burn = 0;
    bool breached = false;          // currently over on both windows
    std::uint64_t breaches = 0;     // breach edges seen (monotone)
    std::uint64_t consecutive = 0;  // breaching evaluations in a row
  };

  static SloTracker& instance();

  /// Replaces the objective set and resets all breach state.
  void configure(std::vector<Objective> objectives);
  void add(Objective objective);
  void clear();
  std::size_t objective_count() const;

  /// Breaching evaluations in a row before the "overloaded" readiness
  /// condition is set (cleared on the first non-breaching evaluation).
  void set_overload_evals(std::uint64_t n);

  /// Registers evaluate() as the WindowedRegistry tick hook.
  void attach();

  /// Recomputes every objective's burn rates from the windowed registry,
  /// updates breach counters / flight-recorder events / the overloaded
  /// readiness condition. Called per tick once attach()ed.
  void evaluate();

  std::optional<ObjectiveStatus> status(std::string_view name) const;
  std::vector<ObjectiveStatus> all_status() const;
  bool overloaded() const;

  /// {"objectives":[{"name":..,"kind":..,"short_burn":..,"long_burn":..,
  ///   "breached":..,"breaches":..}],"overloaded":bool} — spliced into
  /// /vars.json and served standalone for tests.
  std::string render_json() const;

  /// Parses "name:latency:<hist>:<quantile>:<threshold_ns>[:burn]",
  ///        "name:error_ratio:<err_counter>:<total_counter>:<max_rate>[:burn]",
  ///        "name:gauge_above:<gauge>:<threshold>[:burn]" — the
  /// fgad_server --slo flag format.
  static Result<Objective> parse(std::string_view spec);

  /// The stock objective set fgad_server installs by default: delete /
  /// access commit p99 latency, RPC error ratio, and reactor
  /// backpressure feeding the overload signal.
  static std::vector<Objective> default_server_objectives();

 private:
  SloTracker() = default;

  struct State {
    Objective obj;
    double short_burn = 0;
    double long_burn = 0;
    bool breached = false;
    std::uint64_t breaches = 0;
    std::uint64_t consecutive = 0;
  };

  double burn_over_window(const Objective& obj, std::uint64_t window_s) const;

  mutable std::mutex mu_;
  std::vector<State> states_;
  std::uint64_t overload_evals_ = 3;
  bool overloaded_ = false;
};

}  // namespace fgad::obs
