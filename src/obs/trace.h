// Request-scoped span tracing (DESIGN.md §12).
//
// A trace is a tree of named, timed spans collected on one thread. The
// client starts one per user operation (`trace_begin` with a fresh
// request id), the Client tags every RPC frame with that id
// (proto::seal_tagged), and the server adopts it for the duration of the
// handler (RequestScope) so its audit-log lines and slow-op warnings
// carry the same id — one grep correlates both parties.
//
// When no trace is active every Span is a single thread-local load and a
// branch; nothing allocates.
#pragma once

#include <cstdint>
#include <cstdio>
#include <deque>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"

namespace fgad::obs {

/// The request id bound to this thread (0 = none). Cheap enough to call
/// on every RPC.
std::uint64_t current_request_id();

/// Fresh, process-unique, unpredictable-enough request id (not a secret —
/// it only correlates logs).
std::uint64_t generate_request_id();

/// Server-side RAII adoption of a request id decoded from the wire; the
/// previous id is restored on scope exit. Does not start span collection.
class RequestScope {
 public:
  explicit RequestScope(std::uint64_t rid);
  ~RequestScope();
  RequestScope(const RequestScope&) = delete;
  RequestScope& operator=(const RequestScope&) = delete;

 private:
  std::uint64_t prev_;
};

/// Starts collecting spans on this thread under `rid` (also sets
/// current_request_id). Any previous collection on the thread is dropped.
/// `parent_span_id` (when nonzero) parents this thread's root spans under
/// a span of the remote peer that sent the request — the wire-carried
/// span context of a kTaggedEnvelopeV2 frame (DESIGN.md §19).
void trace_begin(std::uint64_t rid, std::uint64_t parent_span_id = 0);

/// True when this thread is collecting spans.
bool trace_active();

/// The id of the innermost open span on this thread (0 when none or no
/// trace is active). This is the span context a client puts on the wire.
std::uint64_t trace_current_span_id();

/// Names this process's lane in rendered/stitched trace documents
/// ("client", "primary", "backup", ...). `label` must outlive the
/// process (string literals only); defaults to "proc".
void trace_set_process_label(const char* label);

/// Prints the collected span tree to `out`, then stops collection and
/// clears the request id. No-op when no trace is active.
void trace_dump(std::FILE* out);

/// Renders the spans collected on this thread since trace_begin() as one
/// Chrome trace-event JSON object (the `{"traceEvents":[...]}` flavor,
/// loadable in Perfetto or chrome://tracing; DESIGN.md §14). Spans become
/// complete ("ph":"X") events with microsecond ts/dur, so the nesting
/// shows up as a flame graph. Does not stop collection; returns "" when
/// no trace is active.
std::string trace_render_chrome_json();

/// trace_dump's file sibling: writes trace_render_chrome_json() to `path`
/// atomically, then stops collection and clears the request id.
Status trace_export_json(const std::string& path);

/// Stops span collection on this thread without printing anything and
/// clears the request id. No-op when no trace is active.
void trace_stop();

/// Bounded FIFO of rid -> rendered Chrome-trace JSON, filled by the server
/// when capture is enabled (`fgad_server --trace-capture N`). Serves
/// GET /traces.json (index) and GET /trace.json?rid=<hex> (one trace).
class TraceStore {
 public:
  static TraceStore& instance();

  /// Keeps the most recent `n` traces; 0 (the default) disables capture.
  void set_capacity(std::size_t n);
  bool capture_enabled() const;

  /// Stores `rid`'s rendered document. A second put under the same rid
  /// merges the new document's events into the stored one (same process,
  /// same clock — multi-RPC traces accumulate into one timeline).
  /// Evicting a trace to make room records an FrEvent::kSpanDropped
  /// (rid = the evicted trace's) and bumps fgad_trace_dropped_total.
  void put(std::uint64_t rid, std::string trace_json);
  /// Splices one post-hoc event into `rid`'s stored document — work that
  /// finished after the owning thread's trace was captured (e.g. the
  /// group committer's amortized fsync share). `abs_start_ns` is on this
  /// process's obs::now_ns() clock. No-op when rid is absent.
  void append_event(std::uint64_t rid, const char* name,
                    std::uint64_t abs_start_ns, std::uint64_t dur_ns);
  /// The stored trace for `rid`, or "" when absent/evicted.
  std::string get(std::uint64_t rid) const;
  /// Stored rids, oldest first.
  std::vector<std::uint64_t> rids() const;

 private:
  TraceStore() = default;

  mutable std::mutex mu_;
  std::size_t capacity_ = 0;
  std::deque<std::uint64_t> order_;
  std::unordered_map<std::uint64_t, std::string> by_rid_;
};

/// RAII span. `name` must outlive the trace (string literals only).
class Span {
 public:
  explicit Span(const char* name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  std::size_t index_;
  std::uint64_t parent_restore_ = 0;  // parent id displaced by this span
  static constexpr std::size_t kInactive = ~std::size_t{0};
};

}  // namespace fgad::obs
