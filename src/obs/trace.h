// Request-scoped span tracing (DESIGN.md §12).
//
// A trace is a tree of named, timed spans collected on one thread. The
// client starts one per user operation (`trace_begin` with a fresh
// request id), the Client tags every RPC frame with that id
// (proto::seal_tagged), and the server adopts it for the duration of the
// handler (RequestScope) so its audit-log lines and slow-op warnings
// carry the same id — one grep correlates both parties.
//
// When no trace is active every Span is a single thread-local load and a
// branch; nothing allocates.
#pragma once

#include <cstdint>
#include <cstdio>

namespace fgad::obs {

/// The request id bound to this thread (0 = none). Cheap enough to call
/// on every RPC.
std::uint64_t current_request_id();

/// Fresh, process-unique, unpredictable-enough request id (not a secret —
/// it only correlates logs).
std::uint64_t generate_request_id();

/// Server-side RAII adoption of a request id decoded from the wire; the
/// previous id is restored on scope exit. Does not start span collection.
class RequestScope {
 public:
  explicit RequestScope(std::uint64_t rid);
  ~RequestScope();
  RequestScope(const RequestScope&) = delete;
  RequestScope& operator=(const RequestScope&) = delete;

 private:
  std::uint64_t prev_;
};

/// Starts collecting spans on this thread under `rid` (also sets
/// current_request_id). Any previous collection on the thread is dropped.
void trace_begin(std::uint64_t rid);

/// True when this thread is collecting spans.
bool trace_active();

/// Prints the collected span tree to `out`, then stops collection and
/// clears the request id. No-op when no trace is active.
void trace_dump(std::FILE* out);

/// RAII span. `name` must outlive the trace (string literals only).
class Span {
 public:
  explicit Span(const char* name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  std::size_t index_;
  static constexpr std::size_t kInactive = ~std::size_t{0};
};

}  // namespace fgad::obs
