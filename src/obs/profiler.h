// In-process sampling profiler (DESIGN.md §17).
//
// setitimer(ITIMER_PROF) delivers SIGPROF to whichever thread is
// burning CPU; the handler captures that thread's stack with
// backtrace() and publishes it into a preallocated sample ring using
// the flight recorder's publish trick — one relaxed fetch_add claims a
// slot, plain stores fill it, a release store of the frame count makes
// it readable. No locks, no allocation, no stdio in the handler.
//
// Signal-safety argument (DESIGN.md §17): backtrace() lazily dlopens
// libgcc on first use, which allocates — so start() pre-warms it once
// from a normal context before arming the timer. After that the handler
// only does the unwind walk, array stores, and atomics. Samples that
// land after the ring is full are counted as dropped, not resized.
//
// Aggregation happens entirely outside signal context: folded() groups
// identical stacks, symbolizes each frame via dladdr +
// abi::__cxa_demangle, and emits collapsed/folded-stack text
// ("frameRoot;frameMid;frameLeaf count\n") — feed it straight to
// flamegraph.pl or speedscope. Served at GET /profile?seconds=N.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "common/result.h"

namespace fgad::obs {

class Profiler {
 public:
  static constexpr std::size_t kMaxDepth = 64;

  struct Options {
    // Sampling period. 997us (a prime) avoids lockstep with 1ms-periodic
    // work; ~1k samples per busy second.
    std::uint64_t interval_us = 997;
    // false = ITIMER_PROF (CPU time: on-CPU threads only);
    // true = ITIMER_REAL (wall clock: also catches blocked time, but the
    // signal lands on an arbitrary thread).
    bool wall = false;
    std::size_t max_samples = 1 << 16;
  };

  static Profiler& instance();

  /// Arms the timer and starts sampling. Fails if already running.
  Status start(Options opts);
  Status start() { return start(Options{}); }
  /// Disarms the timer. Published samples remain readable.
  void stop();
  bool running() const;

  /// Samples published so far (monotone while running).
  std::uint64_t sample_count() const;
  /// Samples lost to a full ring.
  std::uint64_t dropped() const;

  /// Collapsed-stack aggregation of the published samples, root-first:
  /// "frameA;frameB;frameC 42\n". Symbolizes (allocates) — never call
  /// from a signal handler. Safe to call while sampling continues; it
  /// reads only published slots.
  std::string folded() const;

  /// start() + sleep + stop() + folded(), the /profile?seconds=N body.
  /// On start failure the error message is returned as a "# error: ..."
  /// comment line so the HTTP layer can pass it through.
  static std::string capture_folded(double seconds, Options opts);
  static std::string capture_folded(double seconds) {
    return capture_folded(seconds, Options{});
  }

 private:
  Profiler() = default;

  struct Sample {
    // depth+1 with release ordering once readable; 0 while empty or
    // mid-write.
    std::atomic<std::uint32_t> pub{0};
    void* pcs[kMaxDepth];  // leaf-first, as backtrace() returns
  };

  static void on_sigprof(int);
  void record_current_stack();

  std::unique_ptr<Sample[]> samples_;
  std::size_t max_samples_ = 0;
  std::atomic<std::uint64_t> next_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<bool> active_{false};
  bool wall_timer_ = false;
  bool handler_installed_ = false;
};

}  // namespace fgad::obs
