// Minimal HTTP/1.1 endpoint exposing the metrics registry:
//
//   GET /metrics       -> text/plain Prometheus-style exposition
//   GET /metrics.json  -> application/json
//   GET /vars.json     -> windowed rates/quantiles + SLO burn rates
//                         (?window=60s|5m|1h; DESIGN.md §17)
//   GET /healthz       -> liveness: always "ok\n" while the process runs
//   GET /readyz        -> readiness: 503 + JSON reasons during recovery
//                         replay, shutdown checkpoint, or SLO overload
//   GET /profile       -> ?seconds=N[&mode=wall]: blocks, samples, and
//                         returns collapsed/folded stacks (flamegraph-ready)
//   GET /clock         -> {"now_ns":N} on this process's steady clock —
//                         the peer-offset sampling target (DESIGN.md §19)
//   GET /trace.json    -> ?rid=<hex>[&local=1]: the rid's captured span
//                         document; with a stitch peer configured (and
//                         no local=1), the peer's segment is fetched and
//                         merged in skew-corrected
//
// One accept thread, one connection at a time, Connection: close. This is
// an operator scrape target on loopback, not a web server; the framed RPC
// port stays separate (net::TcpServer speaks length-prefixed frames, not
// HTTP).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/result.h"

namespace fgad::obs {

class MetricsHttpServer {
 public:
  struct Options {
    int io_timeout_ms = 5000;  // per-connection read/write budget
  };

  /// Binds 127.0.0.1:port (0 = ephemeral; see port()) and starts serving.
  static Result<std::unique_ptr<MetricsHttpServer>> create(std::uint16_t port,
                                                           Options opts);
  static Result<std::unique_ptr<MetricsHttpServer>> create(std::uint16_t port) {
    return create(port, Options{});
  }

  ~MetricsHttpServer();
  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  std::uint16_t port() const { return port_; }
  void stop();

  /// Names a peer metrics endpoint (the replication follower's) whose
  /// trace segments GET /trace.json?rid= stitches into this node's
  /// document: the handler samples the peer's GET /clock for a skew
  /// estimate, fetches the peer's segment with &local=1 (which suppresses
  /// recursive stitching), and merges it skew-corrected (DESIGN.md §19).
  void set_stitch_peer(const std::string& host, std::uint16_t port);

 private:
  MetricsHttpServer(int listen_fd, std::uint16_t port, Options opts);
  void serve_loop();
  void serve_one(int fd);

  int listen_fd_;
  std::uint16_t port_;
  Options opts_;
  std::atomic<bool> stopping_{false};
  mutable std::mutex stitch_mu_;
  std::string stitch_host_;
  std::uint16_t stitch_port_ = 0;
  std::thread thread_;
};

}  // namespace fgad::obs
