// Minimal HTTP/1.1 endpoint exposing the metrics registry:
//
//   GET /metrics       -> text/plain Prometheus-style exposition
//   GET /metrics.json  -> application/json
//   GET /vars.json     -> windowed rates/quantiles + SLO burn rates
//                         (?window=60s|5m|1h; DESIGN.md §17)
//   GET /healthz       -> liveness: always "ok\n" while the process runs
//   GET /readyz        -> readiness: 503 + JSON reasons during recovery
//                         replay, shutdown checkpoint, or SLO overload
//   GET /profile       -> ?seconds=N[&mode=wall]: blocks, samples, and
//                         returns collapsed/folded stacks (flamegraph-ready)
//
// One accept thread, one connection at a time, Connection: close. This is
// an operator scrape target on loopback, not a web server; the framed RPC
// port stays separate (net::TcpServer speaks length-prefixed frames, not
// HTTP).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>

#include "common/result.h"

namespace fgad::obs {

class MetricsHttpServer {
 public:
  struct Options {
    int io_timeout_ms = 5000;  // per-connection read/write budget
  };

  /// Binds 127.0.0.1:port (0 = ephemeral; see port()) and starts serving.
  static Result<std::unique_ptr<MetricsHttpServer>> create(std::uint16_t port,
                                                           Options opts);
  static Result<std::unique_ptr<MetricsHttpServer>> create(std::uint16_t port) {
    return create(port, Options{});
  }

  ~MetricsHttpServer();
  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  std::uint16_t port() const { return port_; }
  void stop();

 private:
  MetricsHttpServer(int listen_fd, std::uint16_t port, Options opts);
  void serve_loop();
  void serve_one(int fd);

  int listen_fd_;
  std::uint16_t port_;
  Options opts_;
  std::atomic<bool> stopping_{false};
  std::thread thread_;
};

}  // namespace fgad::obs
