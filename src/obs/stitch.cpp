#include "obs/stitch.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace fgad::obs {

std::int64_t offset_from_sample(const ClockSample& s) {
  // Midpoint rule: assume the peer read its clock halfway through the
  // round trip. Signed arithmetic throughout — the peer's steady clock
  // can sit on either side of ours.
  const std::int64_t mid = static_cast<std::int64_t>(
      (s.local_send_ns + s.local_recv_ns) / 2);
  return static_cast<std::int64_t>(s.peer_ns) - mid;
}

OffsetEstimate best_offset(const std::vector<ClockSample>& samples) {
  OffsetEstimate best;
  for (const ClockSample& s : samples) {
    if (s.local_recv_ns < s.local_send_ns) {
      continue;  // non-causal sample (clock glitch); discard
    }
    const std::uint64_t rtt = s.local_recv_ns - s.local_send_ns;
    if (!best.valid || rtt < best.rtt_ns) {
      best.valid = true;
      best.rtt_ns = rtt;
      best.offset_ns = offset_from_sample(s);
    }
  }
  return best;
}

std::uint64_t trace_doc_t0_ns(const std::string& doc) {
  const std::size_t pos = doc.find("\"t0_ns\":");
  if (pos == std::string::npos) {
    return 0;
  }
  return std::strtoull(doc.c_str() + pos + 8, nullptr, 10);
}

namespace {

/// Rewrites `"field":<number>` in one event object by adding `delta`
/// (formatted back with three decimals for ts, integral for pid).
void rewrite_number(std::string& obj, const char* field, double delta,
                    bool integral) {
  const std::string needle = std::string("\"") + field + "\":";
  const std::size_t pos = obj.find(needle);
  if (pos == std::string::npos) {
    return;
  }
  const std::size_t vstart = pos + needle.size();
  char* endp = nullptr;
  const double old_v = std::strtod(obj.c_str() + vstart, &endp);
  const std::size_t vend = static_cast<std::size_t>(endp - obj.c_str());
  char buf[48];
  if (integral) {
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(old_v + delta));
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f", old_v + delta);
  }
  obj.replace(vstart, vend - vstart, buf);
}

}  // namespace

std::string trace_stitch(const std::string& base_doc,
                         const std::string& peer_doc,
                         std::int64_t offset_ns, int pid_delta) {
  const std::string marker = "\"traceEvents\":[";
  const std::size_t peer_start = peer_doc.find(marker);
  const std::size_t base_end = base_doc.rfind("]}");
  if (peer_start == std::string::npos || base_end == std::string::npos) {
    return base_doc;
  }
  const std::uint64_t base_t0 = trace_doc_t0_ns(base_doc);
  const std::uint64_t peer_t0 = trace_doc_t0_ns(peer_doc);
  // Every peer ts (µs relative to peer_t0) lands at
  //   peer_t0 + ts*1e3 - offset    on the base clock, i.e. relative to
  // base_t0 it shifts by a constant number of microseconds:
  const double ts_delta_us =
      (static_cast<double>(static_cast<std::int64_t>(peer_t0) -
                           static_cast<std::int64_t>(base_t0)) -
       static_cast<double>(offset_ns)) /
      1e3;

  std::string merged = base_doc.substr(0, base_end);
  bool base_empty = false;
  {
    // Is the base event array empty (insertion needs no leading comma)?
    const std::size_t base_arr = base_doc.find(marker);
    base_empty = base_arr != std::string::npos &&
                 base_arr + marker.size() == base_end;
  }

  // Walk the peer's event array object by object (brace-matched — event
  // objects contain nested "args" objects but no strings with braces).
  std::size_t pos = peer_start + marker.size();
  bool inserted_any = false;
  while (pos < peer_doc.size() && peer_doc[pos] != ']') {
    if (peer_doc[pos] != '{') {
      ++pos;
      continue;
    }
    int depth = 0;
    std::size_t end = pos;
    for (std::size_t i = pos; i < peer_doc.size(); ++i) {
      if (peer_doc[i] == '{') {
        ++depth;
      } else if (peer_doc[i] == '}') {
        if (--depth == 0) {
          end = i;
          break;
        }
      }
    }
    std::string ev = peer_doc.substr(pos, end - pos + 1);
    rewrite_number(ev, "ts", ts_delta_us, /*integral=*/false);
    rewrite_number(ev, "pid", pid_delta, /*integral=*/true);
    if (!base_empty || inserted_any) {
      merged += ",";
    }
    merged += ev;
    inserted_any = true;
    pos = end + 1;
  }
  merged += "]}";
  return merged;
}

}  // namespace fgad::obs
