#include "obs/log.h"

#include <chrono>

#include "obs/metrics.h"

namespace fgad::obs {

namespace {

/// Wall-clock seconds with microsecond precision for log timestamps.
double wall_ts() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

bool needs_quoting(std::string_view v) {
  if (v.empty()) {
    return true;
  }
  for (char c : v) {
    if (c == ' ' || c == '"' || c == '=' || c == '\\' || c == '\n') {
      return true;
    }
  }
  return false;
}

}  // namespace

const char* level_name(Level l) {
  switch (l) {
    case Level::kDebug:
      return "debug";
    case Level::kInfo:
      return "info";
    case Level::kWarn:
      return "warn";
    case Level::kError:
      return "error";
    case Level::kOff:
      return "off";
  }
  return "?";
}

Level parse_level(std::string_view s) {
  if (s == "debug") return Level::kDebug;
  if (s == "warn") return Level::kWarn;
  if (s == "error") return Level::kError;
  if (s == "off") return Level::kOff;
  return Level::kInfo;
}

Kv& Kv::u64(const char* key, std::uint64_t v) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), " %s=%llu", key,
                static_cast<unsigned long long>(v));
  out_ += buf;
  return *this;
}

Kv& Kv::i64(const char* key, std::int64_t v) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), " %s=%lld", key, static_cast<long long>(v));
  out_ += buf;
  return *this;
}

Kv& Kv::dbl(const char* key, double v) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), " %s=%.6g", key, v);
  out_ += buf;
  return *this;
}

Kv& Kv::hex64(const char* key, std::uint64_t v) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), " %s=%016llx", key,
                static_cast<unsigned long long>(v));
  out_ += buf;
  return *this;
}

Kv& Kv::str(const char* key, std::string_view v) {
  out_ += " ";
  out_ += key;
  out_ += "=";
  if (!needs_quoting(v)) {
    out_ += v;
    return *this;
  }
  out_ += '"';
  for (char c : v) {
    if (c == '"' || c == '\\') {
      out_ += '\\';
      out_ += c;
    } else if (c == '\n') {
      out_ += "\\n";
    } else {
      out_ += c;
    }
  }
  out_ += '"';
  return *this;
}

Logger& Logger::instance() {
  static Logger l;
  return l;
}

void Logger::log(Level l, const char* event, const Kv& kv) {
  std::FILE* f = sink();
  if (f == nullptr || l < level()) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  std::fprintf(f, "ts=%.6f level=%s event=%s%s\n", wall_ts(), level_name(l),
               event, kv.text().c_str());
  std::fflush(f);
}

void Logger::slow_op(const char* op, std::uint64_t dur_ns, std::uint64_t rid) {
  const std::uint64_t threshold = slow_op_threshold_ns();
  if (threshold == 0 || dur_ns < threshold) {
    return;
  }
  static Counter& slow_ops =
      Registry::instance().counter("fgad_slow_ops_total");
  slow_ops.inc();
  Kv kv;
  kv.str("op", op);
  if (rid != 0) {
    kv.hex64("rid", rid);
  }
  kv.dbl("dur_ms", static_cast<double>(dur_ns) / 1e6);
  log(Level::kWarn, "slow_op", kv);
}

AuditLog& AuditLog::instance() {
  static AuditLog a;
  return a;
}

void AuditLog::record(const Entry& e, const Status& outcome) {
  std::FILE* f = sink_.load();
  if (f == nullptr) {
    return;
  }
  Kv kv;
  kv.hex64("rid", e.request_id)
      .str("op", e.op)
      .u64("file", e.file_id)
      .u64("item", e.item)
      .u64("path_len", e.path_len)
      .u64("cut", e.cut_size);
  if (e.term != 0 || e.lsn != 0) {
    kv.u64("term", e.term).u64("lsn", e.lsn);
  }
  if (outcome) {
    kv.str("outcome", "ok");
  } else {
    kv.str("outcome", "error")
        .str("err", errc_name(outcome.error().code))
        .str("msg", outcome.error().message);
  }
  std::lock_guard<std::mutex> lock(mu_);
  std::fprintf(f, "audit ts=%.6f%s\n", wall_ts(), kv.text().c_str());
  std::fflush(f);
}

namespace {
struct CommitContext {
  std::uint64_t term = 0;
  std::uint64_t lsn = 0;
};
thread_local CommitContext t_commit;
}  // namespace

void AuditLog::set_commit_context(std::uint64_t term, std::uint64_t lsn) {
  t_commit.term = term;
  t_commit.lsn = lsn;
}

void AuditLog::clear_commit_context() { t_commit = CommitContext{}; }

std::uint64_t AuditLog::commit_term() { return t_commit.term; }

std::uint64_t AuditLog::commit_lsn() { return t_commit.lsn; }

}  // namespace fgad::obs
