#include "obs/cost.h"

#include <atomic>
#include <deque>
#include <mutex>
#include <unordered_map>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace fgad::obs {

const char* cost_kind_name(CostKind k) {
  switch (k) {
    case CostKind::kQueueWait: return "queue_wait";
    case CostKind::kWalAppend: return "wal_append";
    case CostKind::kFsyncShare: return "fsync_share";
    case CostKind::kReplWait: return "repl_wait";
    case CostKind::kApply: return "apply";
    case CostKind::kKeyDerive: return "key_derive";
    case CostKind::kTotal: return "total";
    default: return "unknown";
  }
}

struct CostLedger::Impl {
  std::atomic<bool> enabled{false};
  std::mutex mu;
  std::deque<std::uint64_t> order;
  std::unordered_map<std::uint64_t, Breakdown> rows;
};

CostLedger::Impl& CostLedger::impl() {
  static Impl i;
  return i;
}

CostLedger& CostLedger::instance() {
  static CostLedger ledger;
  return ledger;
}

void CostLedger::set_enabled(bool on) {
  if (on) {
    calibrate_tick_clock();  // one-shot; keeps the spin out of ScopedCost
  }
  impl().enabled.store(on, std::memory_order_relaxed);
  if (!on) {
    clear();
  }
}

bool CostLedger::enabled() const {
  return impl().enabled.load(std::memory_order_relaxed);
}

void CostLedger::add(std::uint64_t rid, CostKind k, std::uint64_t ns) {
  if (rid == 0 || !enabled() || k >= CostKind::kCount) {
    return;
  }
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  auto it = im.rows.find(rid);
  if (it == im.rows.end()) {
    if (im.order.size() >= kMaxEntries) {
      im.rows.erase(im.order.front());
      im.order.pop_front();
    }
    im.order.push_back(rid);
    it = im.rows.emplace(rid, Breakdown{}).first;
  }
  it->second.ns[static_cast<std::size_t>(k)] += ns;
}

CostLedger::Breakdown CostLedger::take(std::uint64_t rid) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  const auto it = im.rows.find(rid);
  if (it == im.rows.end()) {
    return Breakdown{};
  }
  Breakdown b = it->second;
  im.rows.erase(it);
  // The order deque keeps a stale rid entry; it is skipped naturally when
  // eviction finds no row for it, so no O(n) scrub here.
  return b;
}

void CostLedger::clear() {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  im.rows.clear();
  im.order.clear();
}

// The scope clock is now_ticks(), not now_ns(): at per-item granularity
// (the client wraps every key derivation) two vDSO clock reads would be
// most of the accounting cost.
ScopedCost::ScopedCost(CostKind kind) : kind_(kind) {
  if (CostLedger::instance().enabled()) {
    rid_ = current_request_id();
    if (rid_ != 0) {
      t0_ = now_ticks();
    }
  }
}

ScopedCost::~ScopedCost() {
  if (rid_ != 0) {
    CostLedger::instance().add(rid_, kind_, ticks_to_ns(now_ticks() - t0_));
  }
}

}  // namespace fgad::obs
