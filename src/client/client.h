// The client — the first party of the two-party scheme.
//
// Holds the master key of each outsourced file (and nothing else that
// grows with file size), performs every cryptographic step of the protocol
// (key derivation, MT(k) verification, delta computation, sealing/opening
// items), and talks to the cloud through an RpcChannel.
//
// Security behaviours implemented here, per the paper:
//   * master keys live in self-wiping MasterKey objects; a deletion rotates
//     the key only after the server confirms the commit, and the old key is
//     cleansed in place;
//   * every server response is verified (path distinctness, geometry,
//     ciphertext hash, counter echo) before the client acts on it;
//   * the client re-runs an operation with fresh randomness when the server
//     reports a duplicate modulator;
//   * a global counter r makes every sealed record unique.
//
// compute_timer() accumulates pure client-side computation time — the
// paper's "computation overhead" metric (Figure 6, Tables II-III).
#pragma once

#include <functional>

#include "common/stopwatch.h"
#include "core/batch_derive.h"
#include "core/client_math.h"
#include "core/item_codec.h"
#include "core/outsource.h"
#include "core/prefix_cache.h"
#include "crypto/secure_buffer.h"
#include "net/transport.h"
#include "proto/messages.h"

namespace fgad::client {

class Client {
 public:
  struct Options {
    crypto::HashAlg alg = crypto::HashAlg::kSha1;
    // Duplicate-modulator re-run bound: 1 initial attempt plus up to
    // max_retries re-runs with fresh randomness (0 = try exactly once).
    int max_retries = 8;
    // Worker threads for whole-file derivation / sealing / unsealing:
    // 0 = hardware_concurrency, 1 = the seed's sequential pass. Results
    // are byte-identical at every setting.
    std::size_t threads = 0;
    // Cache path-prefix chain values per file so repeated single-item
    // access/modify costs O(1) hashes amortized instead of O(log n).
    bool use_prefix_cache = true;
    // Wrap every mutating RPC in a tagged envelope with a fresh request
    // id even when no trace is active. Against a durable server
    // (cloud::DurableServer) the id doubles as an idempotency token, so
    // net::RetryChannel may resend deletions/insertions after transport
    // failures with exactly-once semantics (DESIGN.md §13). Off by
    // default: untagged traffic stays byte-identical to the seed wire
    // protocol.
    bool tag_mutations = false;
  };

  Client(net::RpcChannel& channel, crypto::RandomSource& rnd)
      : Client(channel, rnd, Options()) {}
  Client(net::RpcChannel& channel, crypto::RandomSource& rnd, Options opts);

  /// Client-held state for one outsourced file: its id, master key, and
  /// the path-prefix cache bound to the current key epoch. The cache is
  /// mutable so read-style operations (access) can warm it; the client
  /// invalidates it on re-key and on structural mutations.
  ///
  /// `poisoned` is set when a key-rotating commit's outcome is unknown
  /// (the transport failed after the request may have been sent): the
  /// handle then holds BOTH candidate keys — `key` (pre-rotation) and
  /// `pending_key` (the fresh key the lost commit would have installed) —
  /// and every operation except drop_file fails fast with kIndeterminate
  /// until resync() determines which epoch the server is in.
  struct FileHandle {
    std::uint64_t id = 0;
    crypto::MasterKey key;
    mutable core::PrefixCache cache;
    bool poisoned = false;
    crypto::MasterKey pending_key;
  };

  // ---- operations ---------------------------------------------------------

  /// Encrypts `n_items` items (supplied by `item_at`) under a fresh master
  /// key, builds the modulation tree, and ships everything to the cloud.
  Result<FileHandle> outsource(std::uint64_t file_id, std::size_t n_items,
                               const std::function<Bytes(std::size_t)>& item_at);
  Result<FileHandle> outsource(std::uint64_t file_id,
                               std::span<const Bytes> items);

  /// Fetches and decrypts one item.
  Result<Bytes> access(const FileHandle& fh, proto::ItemRef ref);

  /// Replaces an item's content (same data key, fresh IV), Section IV-E.
  Status modify(const FileHandle& fh, std::uint64_t item_id,
                BytesView new_content);

  /// Bulk upload: pipelined modify of many items of one file. Both
  /// phases (access fetch, re-sealed upload) go through the channel's
  /// batched path, so against a TcpChannel + reactor server all frames
  /// of a phase are in flight at once and the server's group committer
  /// amortizes one fsync over the batch. Item ids must be distinct
  /// (modify does not touch the tree, so items are independent).
  Status modify_batch(
      const FileHandle& fh,
      std::span<const std::pair<std::uint64_t, Bytes>> updates);

  /// Inserts a new item; returns its unique id r. `after_item_id` positions
  /// it in file order (kAppend = end of file).
  Result<std::uint64_t> insert(
      const FileHandle& fh, BytesView content,
      std::uint64_t after_item_id = core::InsertCommit::kAppend);

  /// Fine-grained assured deletion of one item (Sections IV-C/IV-D): picks
  /// a fresh master key, sends the modulator deltas, and rotates the handle
  /// key — securely destroying the old one — once the server commits.
  Status erase_item(FileHandle& fh, proto::ItemRef ref);

  /// Merged-cut bulk deletion of many items of ONE file (DESIGN.md §16):
  /// a single begin/commit exchange deletes every referenced item under
  /// one fresh master key. The deltas cover the union of the targets'
  /// sibling cuts — |cut| ≤ m·ceil(log2(n/m)) — so m deletions cost one
  /// round trip and ONE key rotation instead of m. Refs must resolve to
  /// distinct items. If the server keeps reporting modulator collisions
  /// past the retry bound, the items are deleted sequentially via
  /// erase_item (each rotating its own key).
  Status erase_items(FileHandle& fh, std::span<const proto::ItemRef> refs);

  /// Batched assured deletion: refs of DISTINCT files pipeline their
  /// begin and commit phases over the channel's batched path; refs that
  /// share a file are grouped and deleted through the merged-cut bulk
  /// path (erase_items), one group at a time. `files[i]` is the handle
  /// for `refs[i]`; a key is rotated if and only if that file's commit
  /// succeeded. Per-file duplicate-modulator rejections fall back to the
  /// sequential erase_item retry loop; the first other failure is
  /// returned after every file has been attempted. If the pipelined
  /// commit phase fails wholesale in transport, every staged handle is
  /// poisoned (see FileHandle) and kIndeterminate is returned.
  Status erase_batch(std::span<FileHandle* const> files,
                     std::span<const proto::ItemRef> refs);

  /// Recovers a poisoned handle: asks the server which key epoch it is
  /// in (by test-decrypting a surviving item, or by observing the file
  /// emptied) and adopts the matching key, clearing the poison. A
  /// transport failure leaves the handle poisoned; retry when the
  /// server is reachable.
  Status resync(FileHandle& fh);

  /// Whole-file access (Table III): fetches the modulation tree and all
  /// ciphertexts, derives every data key in one pass, and decrypts.
  struct FetchedFile {
    std::vector<std::pair<std::uint64_t, Bytes>> items;  // (id, plaintext)
    std::size_t tree_bytes = 0;      // communication overhead numerator
    std::size_t file_bytes = 0;      // total ciphertext payload
    double key_derive_seconds = 0;   // computation overhead numerator
    double decrypt_seconds = 0;      // computation overhead denominator
  };
  Result<FetchedFile> fetch_all(const FileHandle& fh);

  /// Server-side size statistics for one file (item count, tree nodes,
  /// serialized tree bytes) — backs `fgad_cli stats`.
  Result<proto::StatResp> stat(std::uint64_t file_id);

  /// Item ids in file order.
  Result<std::vector<std::uint64_t>> list_items(const FileHandle& fh);

  /// Makes the entire file inaccessible (drops it server-side; the caller
  /// destroys the handle, wiping the master key).
  Status drop_file(FileHandle& fh);

  // ---- metrics & internals --------------------------------------------------

  CumulativeTimer& compute_timer() { return compute_timer_; }
  std::uint64_t counter() const { return counter_; }
  void set_counter(std::uint64_t c) { counter_ = c; }

  /// Server-timing trailer of the most recent traced RPC's V2 response:
  /// the server's per-request cost breakdown (kind = obs::CostKind
  /// ordinal, value = nanoseconds). Empty until a traced RPC returns one.
  const std::vector<proto::TimingEntry>& last_server_timing() const {
    return last_server_timing_;
  }

  const core::ClientMath& math() const { return math_; }
  const core::ItemCodec& codec() const { return codec_; }
  const core::BatchDeriver& deriver() const { return batch_; }

 private:
  Result<Bytes> call(BytesView frame, proto::MsgType expect);

  /// Fail-fast guard: kIndeterminate while `fh` is poisoned.
  Status check_handle(const FileHandle& fh) const;

  /// True when an error code means a commit may or may not have been
  /// applied server-side (transport died after the frame could have been
  /// sent, or the response was unreadable).
  static bool commit_outcome_unknown(Errc c);

  /// Marks `fh` indeterminate between its current key and `fresh`.
  static void poison(FileHandle& fh, crypto::MasterKey&& fresh);

  /// Pipelined batch of `call`s: tags each mutating frame with its own
  /// request id, ships all frames through RpcChannel::roundtrip_batch,
  /// and validates each response (rid echo, type) independently. A
  /// transport-level failure fails the whole batch; per-request error
  /// frames come back as per-slot errors so callers can fall back
  /// per-item (duplicate modulators).
  Result<std::vector<Result<Bytes>>> call_batch(std::vector<Bytes> frames,
                                                proto::MsgType expect);

  /// Verifies one AccessResp payload (path shape, decrypt, counter echo)
  /// and re-seals `new_content` under the item's data key: the
  /// crypto half of modify(), shared with modify_batch().
  Result<proto::ModifyReq> build_modify(const FileHandle& fh,
                                        std::uint64_t item_id,
                                        BytesView access_payload,
                                        BytesView new_content);

  /// Data key of one item; goes through the per-file prefix cache when
  /// Options::use_prefix_cache is set.
  crypto::Md derive_item_key(const FileHandle& fh, const core::AccessInfo& info);

  net::RpcChannel& channel_;
  crypto::RandomSource& rnd_;
  Options opts_;
  core::ClientMath math_;
  core::ItemCodec codec_;
  core::Outsourcer outsourcer_;
  core::BatchDeriver batch_;
  std::uint64_t counter_ = 0;
  CumulativeTimer compute_timer_;
  std::vector<proto::TimingEntry> last_server_timing_;
};

}  // namespace fgad::client
