// Client keystore: the client's persistent secret state, at rest.
//
// The scheme's whole point is that this state is tiny — one master key per
// file (or one control key per file system) plus the global counter r. The
// keystore serializes that state and protects it at rest with a passphrase:
// PBKDF2-HMAC-SHA256 -> AES-128-CBC with an embedded integrity hash (the
// same sealed-record format the items use), so a wrong passphrase or a
// tampered file is rejected rather than yielding garbage keys.
//
// Note the threat-model boundary: the paper's deletion guarantee holds
// against an attacker who seizes the device (and thus this file, and even
// the passphrase) AFTER deletion time T — deleted keys are not in here.
// The passphrase only adds protection for the keys that still exist.
#pragma once

#include <map>
#include <string>

#include "common/result.h"
#include "crypto/digest.h"
#include "crypto/random.h"
#include "crypto/secure_buffer.h"

namespace fgad::client {

class Keystore {
 public:
  Keystore() = default;
  ~Keystore();

  Keystore(const Keystore&) = delete;
  Keystore& operator=(const Keystore&) = delete;
  Keystore(Keystore&&) = default;
  Keystore& operator=(Keystore&&) = default;

  // ---- contents -------------------------------------------------------------

  std::uint64_t counter() const { return counter_; }
  void set_counter(std::uint64_t c) { counter_ = c; }

  /// Stores (or replaces) the master key for a file; the old value is
  /// cleansed.
  void put(std::uint64_t file_id, const crypto::Md& key);

  Result<crypto::Md> get(std::uint64_t file_id) const;
  bool contains(std::uint64_t file_id) const {
    return keys_.count(file_id) != 0;
  }

  /// Securely removes a key (e.g. after dropping a file).
  Status remove(std::uint64_t file_id);

  std::vector<std::uint64_t> file_ids() const;
  std::size_t size() const { return keys_.size(); }

  // ---- persistence -----------------------------------------------------------

  /// Serializes, seals under the passphrase, and writes atomically-ish.
  Status save_to_file(const std::string& path, const std::string& passphrase,
                      crypto::RandomSource& rnd) const;

  /// Loads and unseals; fails closed on a wrong passphrase or tampering.
  static Result<Keystore> load_from_file(const std::string& path,
                                         const std::string& passphrase);

  /// In-memory variants (used by tests and by the CLI's stdin mode).
  Bytes seal(const std::string& passphrase, crypto::RandomSource& rnd) const;
  static Result<Keystore> unseal(BytesView sealed,
                                 const std::string& passphrase);

 private:
  std::uint64_t counter_ = 0;
  std::map<std::uint64_t, crypto::Md> keys_;
};

}  // namespace fgad::client
