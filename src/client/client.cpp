#include "client/client.h"

#include <unordered_map>

#include "obs/cost.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fgad::client {

namespace proto = fgad::proto;
using core::InsertCommit;
using crypto::MasterKey;
using proto::MsgType;

Client::Client(net::RpcChannel& channel, crypto::RandomSource& rnd,
               Options opts)
    : channel_(channel),
      rnd_(rnd),
      opts_(opts),
      math_(opts.alg),
      codec_(opts.alg),
      outsourcer_(opts.alg, /*track_duplicates=*/false, opts.threads),
      batch_(opts.alg, core::BatchDeriver::Options{opts.threads}) {}

crypto::Md Client::derive_item_key(const FileHandle& fh,
                                   const core::AccessInfo& info) {
  obs::Span span("derive_key");
  obs::ScopedCost cost(obs::CostKind::kKeyDerive);
  if (opts_.use_prefix_cache) {
    return fh.cache.derive_key(math_.chain(), fh.key.value(), info.path,
                               info.leaf_mod);
  }
  return math_.derive_key(fh.key.value(), info.path, info.leaf_mod);
}

Status Client::check_handle(const FileHandle& fh) const {
  if (fh.poisoned) {
    return Status(Errc::kIndeterminate,
                  "client: handle is poisoned by an indeterminate key "
                  "rotation; call resync() first");
  }
  return Status::ok();
}

bool Client::commit_outcome_unknown(Errc c) {
  switch (c) {
    case Errc::kTimeout:
    case Errc::kConnReset:
    case Errc::kIoError:
    case Errc::kRetryExhausted:
    case Errc::kDecodeError:  // response unreadable: cannot prove either way
      return true;
    default:
      return false;
  }
}

void Client::poison(FileHandle& fh, MasterKey&& fresh) {
  static obs::Counter& poisoned =
      obs::Registry::instance().counter("fgad_client_indeterminate_commits_total");
  poisoned.inc();
  fh.poisoned = true;
  fh.pending_key = std::move(fresh);
  fh.cache.invalidate();
}

Result<Bytes> Client::call(BytesView frame, MsgType expect) {
  static obs::Counter& rpcs =
      obs::Registry::instance().counter("fgad_client_rpcs_total");
  static obs::Counter& rpc_errors =
      obs::Registry::instance().counter("fgad_client_rpc_errors_total");
  static obs::Histogram& rpc_ns =
      obs::Registry::instance().histogram("fgad_client_rpc_ns");
  obs::ScopedTimer timer(rpc_ns);
  rpcs.inc();
  const auto req_type = proto::peek_type(frame);
  obs::Span span(req_type ? proto::msg_type_name(*req_type) : "rpc");
  // Under an active trace, wrap the frame in a tagged envelope so the
  // server's audit lines carry this request id. Untagged traffic is
  // byte-identical to the pre-tagging protocol. With tag_mutations on,
  // mutating RPCs outside a trace get a fresh id per RPC — the durable
  // server's idempotency token for crash-safe retries.
  std::uint64_t rid = obs::current_request_id();
  if (rid == 0 && opts_.tag_mutations && req_type &&
      proto::is_mutating(*req_type)) {
    rid = obs::generate_request_id();
  }
  // Under an active trace the envelope is the V2 form, carrying this RPC
  // span's id so the server's spans parent under it and the response can
  // return the server-timing trailer. tag_mutations alone (no trace)
  // stays on the V1 envelope — byte-identical to the pre-§19 wire.
  const bool traced = rid != 0 && obs::trace_active();
  Result<Bytes> resp =
      traced ? channel_.roundtrip(proto::seal_tagged_v2(
                   rid, obs::trace_current_span_id(), 0, {}, frame))
      : rid != 0 ? channel_.roundtrip(proto::seal_tagged(rid, frame))
                 : channel_.roundtrip(frame);
  if (!resp) {
    rpc_errors.inc();
    return resp;
  }
  if (traced) {
    // The V2 response's trailer is the server's cost breakdown for this
    // rid; keep the latest one for tools (fgad_cli --trace).
    if (const auto rtag = proto::open_tagged(resp.value());
        rtag && rtag->v2 && !rtag->timings.empty()) {
      last_server_timing_ = rtag->timings;
    }
  }
  auto env = proto::open_message(resp.value());
  if (!env) {
    rpc_errors.inc();
    return env.error();
  }
  if (rid != 0 && env.value().request_id.value_or(rid) != rid) {
    rpc_errors.inc();
    return Error(Errc::kDecodeError,
                 "client: response carries a different request id");
  }
  if (env.value().type == MsgType::kError) {
    rpc_errors.inc();
    proto::Reader r(env.value().payload);
    auto err = proto::ErrorMsg::from(r);
    if (!err) {
      return Error(Errc::kDecodeError, "client: malformed error response");
    }
    return Error(err.value().code, err.value().message);
  }
  if (env.value().type != expect) {
    rpc_errors.inc();
    return Error(Errc::kDecodeError, "client: unexpected response type");
  }
  return std::move(env.value().payload);
}

Result<std::vector<Result<Bytes>>> Client::call_batch(
    std::vector<Bytes> frames, MsgType expect) {
  static obs::Counter& rpcs =
      obs::Registry::instance().counter("fgad_client_rpcs_total");
  static obs::Counter& rpc_errors =
      obs::Registry::instance().counter("fgad_client_rpc_errors_total");
  static obs::Counter& batches =
      obs::Registry::instance().counter("fgad_client_rpc_batches_total");
  rpcs.inc(frames.size());
  batches.inc();
  obs::Span span("batch_rpc");
  std::vector<std::uint64_t> rids(frames.size(), 0);
  for (std::size_t i = 0; i < frames.size(); ++i) {
    const auto req_type = proto::peek_type(frames[i]);
    std::uint64_t rid = obs::current_request_id();
    if (rid != 0 ||
        (opts_.tag_mutations && req_type && proto::is_mutating(*req_type))) {
      // Pipelined frames need DISTINCT idempotency tokens even under one
      // trace — a shared rid would dedup-collapse the whole batch.
      rid = obs::generate_request_id();
      rids[i] = rid;
      frames[i] = proto::seal_tagged(rid, frames[i]);
    }
  }
  auto resps = channel_.roundtrip_batch(frames);
  if (!resps) {
    rpc_errors.inc();
    return resps.error();
  }
  std::vector<Result<Bytes>> out;
  out.reserve(frames.size());
  for (std::size_t i = 0; i < resps.value().size(); ++i) {
    auto env = proto::open_message(resps.value()[i]);
    if (!env) {
      rpc_errors.inc();
      out.push_back(env.error());
      continue;
    }
    if (rids[i] != 0 && env.value().request_id.value_or(rids[i]) != rids[i]) {
      rpc_errors.inc();
      out.push_back(Error(Errc::kDecodeError,
                          "client: response carries a different request id"));
      continue;
    }
    if (env.value().type == MsgType::kError) {
      rpc_errors.inc();
      proto::Reader r(env.value().payload);
      auto err = proto::ErrorMsg::from(r);
      if (!err) {
        out.push_back(
            Error(Errc::kDecodeError, "client: malformed error response"));
      } else {
        out.push_back(Error(err.value().code, err.value().message));
      }
      continue;
    }
    if (env.value().type != expect) {
      rpc_errors.inc();
      out.push_back(
          Error(Errc::kDecodeError, "client: unexpected response type"));
      continue;
    }
    out.push_back(std::move(env.value().payload));
  }
  return out;
}

Result<Client::FileHandle> Client::outsource(
    std::uint64_t file_id, std::size_t n_items,
    const std::function<Bytes(std::size_t)>& item_at) {
  obs::Span op_span("client:outsource");
  FileHandle fh;
  fh.id = file_id;
  core::OutsourcedFile built;
  {
    CumulativeTimer::Section sec(compute_timer_);
    obs::Span span("build_outsource");
    fh.key = MasterKey::generate(rnd_, math_.width());
    built = outsourcer_.build(fh.key, n_items, item_at, counter_, rnd_);
  }
  proto::OutsourceReq req;
  req.file_id = file_id;
  {
    proto::Writer w;
    built.tree.serialize(w);
    req.tree_blob = std::move(w).take();
  }
  req.items.reserve(built.items.size());
  for (auto& it : built.items) {
    req.items.push_back(proto::OutsourceReq::Item{
        it.item_id, std::move(it.ciphertext), it.plain_size});
  }
  auto resp = call(req.to_frame(), MsgType::kOutsourceResp);
  if (!resp) {
    return resp.error();
  }
  return fh;
}

Result<Client::FileHandle> Client::outsource(std::uint64_t file_id,
                                             std::span<const Bytes> items) {
  return outsource(file_id, items.size(),
                   [&](std::size_t i) { return items[i]; });
}

Result<Bytes> Client::access(const FileHandle& fh, proto::ItemRef ref) {
  obs::Span op_span("client:access");
  if (auto st = check_handle(fh); !st) {
    return st.error();
  }
  proto::AccessReq req;
  req.file_id = fh.id;
  req.ref = ref;
  auto payload = call(req.to_frame(), MsgType::kAccessResp);
  if (!payload) {
    return payload.error();
  }
  proto::Reader r(payload.value());
  auto resp = proto::AccessResp::from(r);
  if (!resp) {
    return resp.error();
  }
  const core::AccessInfo& info = resp.value().info;

  CumulativeTimer::Section sec(compute_timer_);
  if (!info.path.well_formed()) {
    return Error(Errc::kTamperDetected, "access: malformed path");
  }
  crypto::Md key = derive_item_key(fh, info);
  auto opened = codec_.open(key, info.ciphertext);
  if (!opened && opts_.use_prefix_cache) {
    // A cached prefix may be stale (poisoned by an earlier tampered
    // response); drop the cache and re-derive from the master key before
    // concluding the server misbehaved.
    fh.cache.invalidate();
    const crypto::Md fresh =
        math_.derive_key(fh.key.value(), info.path, info.leaf_mod);
    if (fresh != key) {
      key = fresh;
      opened = codec_.open(key, info.ciphertext);
    }
  }
  if (!opened) {
    return Error(Errc::kIntegrityMismatch,
                 "access: item failed integrity check (wrong path or "
                 "tampered ciphertext)");
  }
  if (opened.value().r != info.item_id) {
    return Error(Errc::kTamperDetected, "access: counter value mismatch");
  }
  return std::move(opened.value().plaintext);
}

Result<proto::ModifyReq> Client::build_modify(const FileHandle& fh,
                                              std::uint64_t item_id,
                                              BytesView access_payload,
                                              BytesView new_content) {
  proto::Reader r(access_payload);
  auto resp = proto::AccessResp::from(r);
  if (!resp) {
    return resp.error();
  }
  const core::AccessInfo& info = resp.value().info;

  proto::ModifyReq mreq;
  CumulativeTimer::Section sec(compute_timer_);
  if (!info.path.well_formed()) {
    return Error(Errc::kTamperDetected, "modify: malformed path");
  }
  crypto::Md key = derive_item_key(fh, info);
  auto opened = codec_.open(key, info.ciphertext);
  if (!opened && opts_.use_prefix_cache) {
    fh.cache.invalidate();
    const crypto::Md fresh =
        math_.derive_key(fh.key.value(), info.path, info.leaf_mod);
    if (fresh != key) {
      key = fresh;
      opened = codec_.open(key, info.ciphertext);
    }
  }
  if (!opened) {
    return Error(Errc::kIntegrityMismatch, "modify: item failed check");
  }
  if (opened.value().r != info.item_id) {
    return Error(Errc::kTamperDetected, "modify: counter value mismatch");
  }
  mreq.file_id = fh.id;
  mreq.item_id = item_id;
  mreq.ciphertext = codec_.seal(key, new_content, opened.value().r, rnd_);
  mreq.plain_size = new_content.size();
  return mreq;
}

Status Client::modify(const FileHandle& fh, std::uint64_t item_id,
                      BytesView new_content) {
  obs::Span op_span("client:modify");
  if (auto st = check_handle(fh); !st) {
    return st;
  }
  // Fetch the item first (the paper's modify = access, edit, re-encrypt
  // under the same data key).
  proto::AccessReq areq;
  areq.file_id = fh.id;
  areq.ref = proto::ItemRef::id(item_id);
  auto payload = call(areq.to_frame(), MsgType::kAccessResp);
  if (!payload) {
    return payload.status();
  }
  auto mreq = build_modify(fh, item_id, payload.value(), new_content);
  if (!mreq) {
    return mreq.status();
  }
  return call(mreq.value().to_frame(), MsgType::kModifyResp).status();
}

Status Client::modify_batch(
    const FileHandle& fh,
    std::span<const std::pair<std::uint64_t, Bytes>> updates) {
  obs::Span op_span("client:modify_batch");
  if (auto st = check_handle(fh); !st) {
    return st;
  }
  if (updates.empty()) {
    return Status::ok();
  }
  // Phase 1: pipelined access of every target item.
  std::vector<Bytes> frames;
  frames.reserve(updates.size());
  for (const auto& [item_id, content] : updates) {
    (void)content;
    proto::AccessReq areq;
    areq.file_id = fh.id;
    areq.ref = proto::ItemRef::id(item_id);
    frames.push_back(areq.to_frame());
  }
  auto aresps = call_batch(std::move(frames), MsgType::kAccessResp);
  if (!aresps) {
    return aresps.status();
  }
  // Phase 2: verify + re-seal locally, then pipeline the uploads.
  std::vector<Bytes> uploads;
  uploads.reserve(updates.size());
  for (std::size_t i = 0; i < updates.size(); ++i) {
    if (!aresps.value()[i]) {
      return aresps.value()[i].status();
    }
    auto mreq = build_modify(fh, updates[i].first, aresps.value()[i].value(),
                             updates[i].second);
    if (!mreq) {
      return mreq.status();
    }
    uploads.push_back(mreq.value().to_frame());
  }
  auto mresps = call_batch(std::move(uploads), MsgType::kModifyResp);
  if (!mresps) {
    return mresps.status();
  }
  for (const auto& resp : mresps.value()) {
    if (!resp) {
      return resp.status();
    }
  }
  return Status::ok();
}

Result<std::uint64_t> Client::insert(const FileHandle& fh, BytesView content,
                                     std::uint64_t after_item_id) {
  obs::Span op_span("client:insert");
  if (auto st = check_handle(fh); !st) {
    return st.error();
  }
  proto::InsertBeginReq breq;
  breq.file_id = fh.id;
  auto payload = call(breq.to_frame(), MsgType::kInsertBeginResp);
  if (!payload) {
    return payload.error();
  }
  proto::Reader r(payload.value());
  auto bresp = proto::InsertBeginResp::from(r);
  if (!bresp) {
    return bresp.error();
  }
  const core::InsertInfo& info = bresp.value().info;

  // The server rejects duplicate modulators; re-plan with fresh randomness
  // until it accepts (the paper's re-perform rule): one initial attempt
  // plus up to max_retries re-runs.
  for (int attempt = 0; attempt <= opts_.max_retries; ++attempt) {
    proto::InsertCommitReq creq;
    creq.file_id = fh.id;
    std::uint64_t item_id = 0;
    {
      CumulativeTimer::Section sec(compute_timer_);
      obs::Span span("plan_insert");
      auto plan = math_.plan_insert(info, fh.key.value(), rnd_);
      if (!plan) {
        return plan.error();
      }
      item_id = counter_++;
      creq.commit = std::move(plan.value().commit);
      creq.commit.item_id = item_id;
      creq.commit.after_item_id = after_item_id;
      creq.commit.ciphertext =
          codec_.seal(plan.value().item_key, content, item_id, rnd_);
      creq.commit.plain_size = content.size();
    }
    auto resp = call(creq.to_frame(), MsgType::kInsertCommitResp);
    if (resp) {
      // The split relocated leaf q and rewrote modulators around it.
      fh.cache.invalidate();
      return item_id;
    }
    if (resp.error().code != Errc::kDuplicateModulator) {
      return resp.error();
    }
  }
  return Error(Errc::kDuplicateModulator,
               "insert: retries exhausted (server kept reporting duplicates)");
}

Status Client::erase_item(FileHandle& fh, proto::ItemRef ref) {
  obs::Span op_span("client:erase_item");
  if (auto st = check_handle(fh); !st) {
    return st;
  }
  proto::DeleteBeginReq breq;
  breq.file_id = fh.id;
  breq.ref = ref;
  auto payload = call(breq.to_frame(), MsgType::kDeleteBeginResp);
  if (!payload) {
    return payload.status();
  }
  proto::Reader r(payload.value());
  auto bresp = proto::DeleteBeginResp::from(r);
  if (!bresp) {
    return bresp.status();
  }
  const core::DeleteInfo& info = bresp.value().info;

  for (int attempt = 0; attempt <= opts_.max_retries; ++attempt) {
    proto::DeleteCommitReq creq;
    creq.file_id = fh.id;
    MasterKey fresh;
    {
      CumulativeTimer::Section sec(compute_timer_);
      obs::Span span("plan_delete");
      fresh = MasterKey::generate(rnd_, math_.width());
      auto plan =
          math_.plan_delete(info, fh.key.value(), fresh.value(), rnd_);
      if (!plan) {
        if (plan.error().code == Errc::kInvalidArgument) {
          continue;  // F(K',M_k) collision: pick another K'
        }
        return plan.status();
      }
      // Only a response that decrypts the target item to a record matching
      // its embedded hash is accepted (Theorem 2's wrong-leaf defence).
      obs::Span verify_span("verify_target");
      auto opened = codec_.open(plan.value().old_key, info.ciphertext);
      if (!opened) {
        return Status(Errc::kTamperDetected,
                      "delete: MT(k) does not decrypt the target item");
      }
      if (opened.value().r != info.item_id) {
        return Status(Errc::kTamperDetected, "delete: counter value mismatch");
      }
      creq.commit = std::move(plan.value().commit);
    }
    auto resp = call(creq.to_frame(), MsgType::kDeleteCommitResp);
    if (resp) {
      // Server committed: permanently destroy the old master key. Every
      // cached prefix belonged to the dead key epoch.
      fh.key = std::move(fresh);
      fh.cache.invalidate();
      return Status::ok();
    }
    if (resp.error().code == Errc::kDuplicateModulator) {
      continue;  // server-observed collision: re-run with a fresh K'
    }
    if (commit_outcome_unknown(resp.error().code)) {
      // The transport died with the commit in flight: the server may be
      // in either key epoch. Keeping only one candidate key here would
      // risk silently diverging from the server, so the handle holds
      // both and fails fast until resync() settles it.
      poison(fh, std::move(fresh));
      return Status(Errc::kIndeterminate,
                    "delete: commit outcome unknown (" +
                        resp.error().to_string() +
                        "); handle poisoned, resync() required");
    }
    return resp.status();
  }
  return Status(Errc::kDuplicateModulator,
                "delete: retries exhausted (server kept reporting duplicates)");
}

Status Client::erase_items(FileHandle& fh,
                           std::span<const proto::ItemRef> refs) {
  obs::Span op_span("client:erase_items");
  if (auto st = check_handle(fh); !st) {
    return st;
  }
  if (refs.empty()) {
    return Status::ok();
  }
  if (refs.size() == 1) {
    return erase_item(fh, refs[0]);
  }
  static obs::Counter& bulk_deletes =
      obs::Registry::instance().counter("fgad_client_bulk_deletes_total");
  static obs::Counter& bulk_items =
      obs::Registry::instance().counter("fgad_client_bulk_deleted_items_total");

  proto::DeleteManyBeginReq breq;
  breq.file_id = fh.id;
  breq.refs.assign(refs.begin(), refs.end());
  auto payload = call(breq.to_frame(), MsgType::kDeleteManyBeginResp);
  if (!payload) {
    return payload.status();
  }
  proto::Reader r(payload.value());
  auto bresp = proto::DeleteManyBeginResp::from(r);
  if (!bresp) {
    return bresp.status();
  }
  const core::DeleteManyInfo& info = bresp.value().info;

  for (int attempt = 0; attempt <= opts_.max_retries; ++attempt) {
    proto::DeleteManyCommitReq creq;
    creq.file_id = fh.id;
    MasterKey fresh;
    {
      CumulativeTimer::Section sec(compute_timer_);
      obs::Span span("plan_delete_many");
      fresh = MasterKey::generate(rnd_, math_.width());
      auto plan = math_.plan_delete_many(info, fh.key.value(), fresh.value(),
                                         rnd_, batch_.pool());
      if (!plan) {
        if (plan.error().code == Errc::kInvalidArgument) {
          continue;  // F(K',M_d) collision on some target: pick another K'
        }
        return plan.status();
      }
      // Theorem 2's wrong-leaf defence, applied to EVERY target: each
      // returned ciphertext must decrypt under its claimed old data key
      // to a record echoing the item id. One bad target rejects the
      // whole bundle before anything is committed. The m opens are
      // independent under one key epoch, so they ride the batch pool —
      // sequential deletes cannot do this, as each open waits on the
      // previous rotation.
      obs::Span verify_span("verify_targets");
      std::vector<core::BatchDeriver::OpenTask> tasks;
      tasks.reserve(info.targets.size());
      for (std::size_t i = 0; i < info.targets.size(); ++i) {
        tasks.push_back(core::BatchDeriver::OpenTask{
            i, info.targets[i].ciphertext, info.targets[i].item_id});
      }
      auto opened = batch_.open_all(plan.value().old_keys, tasks);
      if (!opened) {
        return Status(Errc::kTamperDetected,
                      opened.error().code == Errc::kIntegrityMismatch
                          ? "delete_many: MT(k) does not decrypt a target item"
                          : "delete_many: counter value mismatch");
      }
      creq.commit = std::move(plan.value().commit);
    }
    auto resp = call(creq.to_frame(), MsgType::kDeleteManyCommitResp);
    if (resp) {
      bulk_deletes.inc();
      bulk_items.inc(refs.size());
      // One commit rotated the key for every deleted item.
      fh.key = std::move(fresh);
      fh.cache.invalidate();
      return Status::ok();
    }
    if (resp.error().code == Errc::kDuplicateModulator) {
      continue;  // server-observed collision: re-run with a fresh K'
    }
    if (commit_outcome_unknown(resp.error().code)) {
      poison(fh, std::move(fresh));
      return Status(Errc::kIndeterminate,
                    "delete_many: commit outcome unknown (" +
                        resp.error().to_string() +
                        "); handle poisoned, resync() required");
    }
    return resp.status();
  }
  // Collision bound exhausted on the merged bundle (more targets → more
  // chances for one modulator to collide). Fall back to sequential
  // single deletions, addressed by the STABLE item ids the begin phase
  // reported — the caller's ordinal/offset refs shift as earlier
  // deletions restructure the file.
  for (const auto& t : info.targets) {
    if (auto st = erase_item(fh, proto::ItemRef::id(t.item_id)); !st) {
      return st;
    }
  }
  return Status::ok();
}

Status Client::erase_batch(std::span<FileHandle* const> files,
                           std::span<const proto::ItemRef> refs) {
  obs::Span op_span("client:erase_batch");
  if (files.size() != refs.size()) {
    return Status(Errc::kInvalidArgument,
                  "erase_batch: files/refs size mismatch");
  }
  if (files.empty()) {
    return Status::ok();
  }
  // Group refs by file id (a hash map — the previous pairwise scan was
  // O(m²) and rejected same-file refs outright). Groups keep first-
  // appearance order so the operation is deterministic.
  struct Group {
    FileHandle* fh;
    std::vector<proto::ItemRef> refs;
  };
  std::vector<Group> groups;
  groups.reserve(files.size());
  std::unordered_map<std::uint64_t, std::size_t> group_of;
  group_of.reserve(files.size());
  for (std::size_t i = 0; i < files.size(); ++i) {
    if (files[i] == nullptr) {
      return Status(Errc::kInvalidArgument, "erase_batch: null file handle");
    }
    auto [it, inserted] = group_of.try_emplace(files[i]->id, groups.size());
    if (inserted) {
      groups.push_back(Group{files[i], {refs[i]}});
      continue;
    }
    Group& g = groups[it->second];
    if (g.fh != files[i]) {
      return Status(Errc::kInvalidArgument,
                    "erase_batch: two distinct handles share one file id");
    }
    g.refs.push_back(refs[i]);
  }

  Status first_error = Status::ok();
  auto note = [&first_error](const Status& st) {
    if (first_error.is_ok() && !st.is_ok()) {
      first_error = st;
    }
  };

  // Same-file groups take the merged-cut bulk path — all their items
  // fall under ONE key rotation — while single-ref groups pipeline their
  // begin/commit phases across files below.
  std::vector<Group*> singles;
  singles.reserve(groups.size());
  for (auto& g : groups) {
    if (auto st = check_handle(*g.fh); !st) {
      note(st);
      continue;
    }
    if (g.refs.size() > 1) {
      note(erase_items(*g.fh, g.refs));
    } else {
      singles.push_back(&g);
    }
  }
  if (singles.empty()) {
    return first_error;
  }

  // Phase 1: pipeline every DeleteBegin.
  std::vector<Bytes> begins;
  begins.reserve(singles.size());
  for (const Group* g : singles) {
    proto::DeleteBeginReq breq;
    breq.file_id = g->fh->id;
    breq.ref = g->refs[0];
    begins.push_back(breq.to_frame());
  }
  auto bresps = call_batch(std::move(begins), MsgType::kDeleteBeginResp);
  if (!bresps) {
    // Begin is read-only, so a wholesale transport failure here leaves
    // no key epoch in doubt.
    note(bresps.status());
    return first_error;
  }

  // Phase 2: plan each deletion locally. The F(K',M_k) collision re-run
  // is pure client-side compute, so it stays inside this loop; only the
  // commit round-trips. Every file whose plan verifies gets staged.
  struct Staged {
    std::size_t idx;  // into `singles`
    MasterKey fresh;
    Bytes frame;
  };
  std::vector<Staged> staged;
  staged.reserve(singles.size());

  for (std::size_t i = 0; i < singles.size(); ++i) {
    const auto& slot = bresps.value()[i];
    if (!slot) {
      note(slot.status());
      continue;
    }
    proto::Reader r(slot.value());
    auto bresp = proto::DeleteBeginResp::from(r);
    if (!bresp) {
      note(bresp.status());
      continue;
    }
    const core::DeleteInfo& info = bresp.value().info;
    FileHandle& fh = *singles[i]->fh;

    auto plan_one = [&](MasterKey& fresh_out) -> Result<proto::DeleteCommitReq> {
      CumulativeTimer::Section sec(compute_timer_);
      obs::Span span("plan_delete");
      for (int attempt = 0; attempt <= opts_.max_retries; ++attempt) {
        MasterKey fresh = MasterKey::generate(rnd_, math_.width());
        auto plan =
            math_.plan_delete(info, fh.key.value(), fresh.value(), rnd_);
        if (!plan) {
          if (plan.error().code == Errc::kInvalidArgument) {
            continue;  // F(K',M_k) collision: pick another K'
          }
          return plan.error();
        }
        obs::Span verify_span("verify_target");
        auto opened = codec_.open(plan.value().old_key, info.ciphertext);
        if (!opened) {
          return Error(Errc::kTamperDetected,
                       "delete: MT(k) does not decrypt the target item");
        }
        if (opened.value().r != info.item_id) {
          return Error(Errc::kTamperDetected,
                       "delete: counter value mismatch");
        }
        proto::DeleteCommitReq creq;
        creq.file_id = fh.id;
        creq.commit = std::move(plan.value().commit);
        fresh_out = std::move(fresh);
        return creq;
      }
      return Error(Errc::kDuplicateModulator,
                   "delete: retries exhausted picking a fresh key");
    };

    MasterKey fresh;
    auto creq = plan_one(fresh);
    if (!creq) {
      note(creq.status());
      continue;
    }
    staged.push_back(Staged{i, std::move(fresh), creq.value().to_frame()});
  }

  // Phase 3: pipeline the commits, then rotate keys for exactly the
  // files whose commit the server confirmed.
  if (!staged.empty()) {
    std::vector<Bytes> commits;
    commits.reserve(staged.size());
    for (auto& s : staged) {
      commits.push_back(std::move(s.frame));
    }
    auto cresps = call_batch(std::move(commits), MsgType::kDeleteCommitResp);
    if (!cresps) {
      if (commit_outcome_unknown(cresps.error().code)) {
        // The transport died with every staged commit in flight: any
        // subset may have been applied server-side. Silently assuming
        // "none landed" would desynchronize client keys from whichever
        // commits did — so every staged handle keeps both candidate
        // keys and fails fast until resync().
        for (auto& s : staged) {
          poison(*singles[s.idx]->fh, std::move(s.fresh));
        }
        return Status(Errc::kIndeterminate,
                      "erase_batch: commit batch outcome unknown (" +
                          cresps.error().to_string() +
                          "); staged handles poisoned, resync() required");
      }
      note(cresps.status());
      return first_error;
    }
    for (std::size_t k = 0; k < staged.size(); ++k) {
      Staged& s = staged[k];
      FileHandle& fh = *singles[s.idx]->fh;
      const auto& resp = cresps.value()[k];
      if (resp) {
        // Server committed: permanently destroy the old master key.
        fh.key = std::move(s.fresh);
        fh.cache.invalidate();
        continue;
      }
      if (resp.error().code == Errc::kDuplicateModulator) {
        // The server saw a modulator collision we could not predict
        // locally; the sequential retry loop handles the re-run.
        note(erase_item(fh, singles[s.idx]->refs[0]));
      } else if (commit_outcome_unknown(resp.error().code)) {
        // Transport failures fail the whole batch above; a per-slot
        // unknown is an unreadable or mismatched response to a commit
        // the server did receive.
        poison(fh, std::move(s.fresh));
        note(Status(Errc::kIndeterminate,
                    "erase_batch: commit outcome unknown; handle "
                    "poisoned, resync() required"));
      } else {
        note(resp.status());
      }
    }
  }
  return first_error;
}

Status Client::resync(FileHandle& fh) {
  obs::Span op_span("client:resync");
  if (!fh.poisoned) {
    return Status::ok();
  }
  auto ids = list_items(fh);
  if (!ids) {
    return ids.status();  // still poisoned; retry when reachable
  }
  if (ids.value().empty()) {
    // No surviving item to probe. Only the in-doubt deletion could have
    // emptied the file (every other mutation is fail-fast while
    // poisoned), so the pending key is the live epoch.
    fh.key = std::move(fh.pending_key);
    fh.cache.invalidate();
    fh.poisoned = false;
    return Status::ok();
  }
  // Probe one surviving item under each candidate epoch: exactly one
  // master key derives a data key that opens its ciphertext.
  proto::AccessReq areq;
  areq.file_id = fh.id;
  areq.ref = proto::ItemRef::id(ids.value().front());
  auto payload = call(areq.to_frame(), MsgType::kAccessResp);
  if (!payload) {
    return payload.status();
  }
  proto::Reader r(payload.value());
  auto resp = proto::AccessResp::from(r);
  if (!resp) {
    return resp.status();
  }
  const core::AccessInfo& info = resp.value().info;
  if (!info.path.well_formed()) {
    return Status(Errc::kTamperDetected, "resync: malformed path");
  }
  CumulativeTimer::Section sec(compute_timer_);
  auto opens_under = [&](const MasterKey& candidate) {
    const crypto::Md key =
        math_.derive_key(candidate.value(), info.path, info.leaf_mod);
    auto opened = codec_.open(key, info.ciphertext);
    return opened.is_ok() && opened.value().r == info.item_id;
  };
  if (opens_under(fh.key)) {
    // The commit never landed: the old epoch is live. The fresh key was
    // never used by anyone; wipe it.
    fh.pending_key.erase();
  } else if (opens_under(fh.pending_key)) {
    fh.key = std::move(fh.pending_key);
  } else {
    return Status(Errc::kTamperDetected,
                  "resync: item opens under neither candidate key");
  }
  fh.cache.invalidate();
  fh.poisoned = false;
  return Status::ok();
}

Result<Client::FetchedFile> Client::fetch_all(const FileHandle& fh) {
  obs::Span op_span("client:fetch_all");
  if (auto st = check_handle(fh); !st) {
    return st.error();
  }
  FetchedFile out;

  proto::FetchTreeReq treq;
  treq.file_id = fh.id;
  auto tpayload = call(treq.to_frame(), MsgType::kFetchTreeResp);
  if (!tpayload) {
    return tpayload.error();
  }
  proto::Reader tr(tpayload.value());
  auto tresp = proto::FetchTreeResp::from(tr);
  if (!tresp) {
    return tresp.error();
  }
  out.tree_bytes = tresp.value().tree_blob.size();

  // Reconstruct the tree locally and derive every data key in one pass.
  std::vector<crypto::Md> keys;
  std::size_t first_leaf = 0;
  {
    CumulativeTimer::Section sec(compute_timer_);
    Stopwatch sw;
    proto::Reader blob(tresp.value().tree_blob);
    auto tree = core::ModulationTree::deserialize(
        blob, core::ModulationTree::Config{opts_.alg,
                                           /*track_duplicates=*/false});
    if (!tree) {
      return tree.error();
    }
    const core::ModulationTree& t = tree.value();
    if (t.alg() != opts_.alg) {
      return Error(Errc::kTamperDetected, "fetch: algorithm mismatch");
    }
    const std::size_t nodes = t.node_count();
    const std::size_t n = t.leaf_count();
    first_leaf = n == 0 ? 0 : n - 1;
    std::vector<crypto::Md> links(nodes);
    for (core::NodeId v = 1; v < nodes; ++v) {
      links[v] = t.link_mod(v);
    }
    std::vector<crypto::Md> leaf_mods(n);
    for (std::size_t i = 0; i < n; ++i) {
      leaf_mods[i] = t.leaf_mod(first_leaf + i);
    }
    {
      obs::Span span("derive_all_keys");
      keys = batch_.derive_all_keys(fh.key.value(), links, leaf_mods);
    }
    out.key_derive_seconds = sw.elapsed_seconds();
  }

  // Stream the ciphertexts and decrypt.
  std::uint64_t ordinal = 0;
  for (;;) {
    proto::FetchItemsReq ireq;
    ireq.file_id = fh.id;
    ireq.start_ordinal = ordinal;
    ireq.max_count = 4096;
    auto ipayload = call(ireq.to_frame(), MsgType::kFetchItemsResp);
    if (!ipayload) {
      return ipayload.error();
    }
    proto::Reader ir(ipayload.value());
    auto iresp = proto::FetchItemsResp::from(ir);
    if (!iresp) {
      return iresp.error();
    }
    CumulativeTimer::Section sec(compute_timer_);
    Stopwatch sw;
    auto& batch_items = iresp.value().items;
    std::vector<core::BatchDeriver::OpenTask> tasks;
    tasks.reserve(batch_items.size());
    for (auto& e : batch_items) {
      const std::size_t idx = e.leaf - first_leaf;
      if (e.leaf < first_leaf || idx >= keys.size()) {
        return Error(Errc::kTamperDetected, "fetch: leaf id out of range");
      }
      out.file_bytes += e.ciphertext.size();
      tasks.push_back(
          core::BatchDeriver::OpenTask{idx, e.ciphertext, e.item_id});
    }
    auto opened = batch_.open_all(keys, tasks);
    if (!opened) {
      if (opened.error().code == Errc::kTamperDetected) {
        return Error(Errc::kTamperDetected, "fetch: counter value mismatch");
      }
      return Error(Errc::kIntegrityMismatch, "fetch: item failed check");
    }
    for (std::size_t i = 0; i < batch_items.size(); ++i) {
      out.items.emplace_back(batch_items[i].item_id,
                             std::move(opened.value()[i]));
    }
    out.decrypt_seconds += sw.elapsed_seconds();
    ordinal += iresp.value().items.size();
    if (!iresp.value().more) {
      break;
    }
  }
  return out;
}

Result<proto::StatResp> Client::stat(std::uint64_t file_id) {
  proto::StatReq req;
  req.file_id = file_id;
  auto payload = call(req.to_frame(), MsgType::kStatResp);
  if (!payload) {
    return payload.error();
  }
  proto::Reader r(payload.value());
  return proto::StatResp::from(r);
}

Result<std::vector<std::uint64_t>> Client::list_items(const FileHandle& fh) {
  proto::ListItemsReq req;
  req.file_id = fh.id;
  auto payload = call(req.to_frame(), MsgType::kListItemsResp);
  if (!payload) {
    return payload.error();
  }
  proto::Reader r(payload.value());
  auto resp = proto::ListItemsResp::from(r);
  if (!resp) {
    return resp.error();
  }
  return std::move(resp.value().ids);
}

Status Client::drop_file(FileHandle& fh) {
  proto::DropFileReq req;
  req.file_id = fh.id;
  auto st = call(req.to_frame(), MsgType::kDropFileResp).status();
  if (st) {
    fh.key.erase();
  }
  return st;
}

}  // namespace fgad::client
