#include "client/keystore.h"

#include <openssl/evp.h>

#include <cstdio>

#include "common/fsio.h"
#include "core/item_codec.h"
#include "proto/wire.h"

namespace fgad::client {

namespace {

constexpr std::uint32_t kMagic = 0x4647444b;  // "FGDK"
constexpr std::size_t kSaltSize = 16;
constexpr int kPbkdf2Iters = 100'000;

// Derives the sealing key from passphrase + salt.
crypto::Md derive_key(const std::string& passphrase, BytesView salt) {
  crypto::Md key = crypto::Md::zero(20);
  if (PKCS5_PBKDF2_HMAC(passphrase.data(),
                        static_cast<int>(passphrase.size()), salt.data(),
                        static_cast<int>(salt.size()), kPbkdf2Iters,
                        EVP_sha256(), static_cast<int>(key.size()),
                        key.data()) != 1) {
    throw std::runtime_error("keystore: PBKDF2 failed");
  }
  return key;
}

}  // namespace

Keystore::~Keystore() {
  for (auto& [id, key] : keys_) {
    key.cleanse();
  }
}

void Keystore::put(std::uint64_t file_id, const crypto::Md& key) {
  auto it = keys_.find(file_id);
  if (it != keys_.end()) {
    it->second.cleanse();
    it->second = key;
  } else {
    keys_.emplace(file_id, key);
  }
}

Result<crypto::Md> Keystore::get(std::uint64_t file_id) const {
  const auto it = keys_.find(file_id);
  if (it == keys_.end()) {
    return Error(Errc::kNotFound, "keystore: no key for file");
  }
  return it->second;
}

Status Keystore::remove(std::uint64_t file_id) {
  const auto it = keys_.find(file_id);
  if (it == keys_.end()) {
    return Status(Errc::kNotFound, "keystore: no key for file");
  }
  it->second.cleanse();
  keys_.erase(it);
  return Status::ok();
}

std::vector<std::uint64_t> Keystore::file_ids() const {
  std::vector<std::uint64_t> ids;
  ids.reserve(keys_.size());
  for (const auto& [id, key] : keys_) {
    ids.push_back(id);
  }
  return ids;
}

Bytes Keystore::seal(const std::string& passphrase,
                     crypto::RandomSource& rnd) const {
  // Plaintext payload.
  proto::Writer payload;
  payload.u64(counter_);
  payload.u64(keys_.size());
  for (const auto& [id, key] : keys_) {
    payload.u64(id);
    payload.md(key);
  }

  Bytes salt(kSaltSize);
  rnd.fill(salt);
  const crypto::Md kek = derive_key(passphrase, salt);

  core::ItemCodec codec(crypto::HashAlg::kSha256);
  proto::Writer out;
  out.u32(kMagic);
  out.raw(salt);
  out.bytes(codec.seal(kek, payload.data(), /*r=*/0, rnd));

  // Wipe the temporary plaintext.
  crypto::SecureBuffer scrub(std::move(payload).take());
  return std::move(out).take();
}

Result<Keystore> Keystore::unseal(BytesView sealed,
                                  const std::string& passphrase) {
  proto::Reader r(sealed);
  if (r.u32() != kMagic) {
    return Error(Errc::kDecodeError, "keystore: bad magic");
  }
  const Bytes salt = r.raw(kSaltSize);
  const Bytes box = r.bytes();
  if (!r.at_end()) {
    return Error(Errc::kDecodeError, "keystore: malformed container");
  }
  const crypto::Md kek = derive_key(passphrase, salt);
  core::ItemCodec codec(crypto::HashAlg::kSha256);
  auto opened = codec.open(kek, box);
  if (!opened) {
    return Error(Errc::kIntegrityMismatch,
                 "keystore: wrong passphrase or corrupted file");
  }
  proto::Reader pr(opened.value().plaintext);
  Keystore ks;
  ks.counter_ = pr.u64();
  const std::uint64_t n = pr.u64();
  if (!pr.ok() || n > (1ull << 32)) {
    return Error(Errc::kDecodeError, "keystore: bad entry count");
  }
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t id = pr.u64();
    const crypto::Md key = pr.md();
    if (!pr.ok()) {
      return Error(Errc::kDecodeError, "keystore: truncated entries");
    }
    ks.keys_.emplace(id, key);
  }
  if (auto st = pr.finish(); !st) {
    return Error(st.error());
  }
  crypto::SecureBuffer scrub(std::move(opened.value().plaintext));
  return ks;
}

Status Keystore::save_to_file(const std::string& path,
                              const std::string& passphrase,
                              crypto::RandomSource& rnd) const {
  // Atomic + durable (temp -> fsync -> rename -> fsync dir): a crash mid-
  // save never clobbers the previous keystore, and the rename is actually
  // on disk when this returns.
  const Bytes sealed = seal(passphrase, rnd);
  if (auto st = fsio::atomic_write_file(path, sealed); !st) {
    return Status(st.error().code, "keystore: " + st.error().message);
  }
  return Status::ok();
}

Result<Keystore> Keystore::load_from_file(const std::string& path,
                                          const std::string& passphrase) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Error(Errc::kIoError, "keystore: cannot open " + path);
  }
  Bytes data;
  std::uint8_t buf[4096];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    data.insert(data.end(), buf, buf + got);
  }
  std::fclose(f);
  auto ks = unseal(data, passphrase);
  crypto::SecureBuffer scrub(std::move(data));
  return ks;
}

}  // namespace fgad::client
