#include "net/inmemory.h"

namespace fgad::net {

bool ByteQueue::push(Bytes b) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) {
      return false;
    }
    q_.push_back(std::move(b));
  }
  cv_.notify_one();
  return true;
}

std::optional<Bytes> ByteQueue::pop() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return closed_ || !q_.empty(); });
  if (q_.empty()) {
    return std::nullopt;
  }
  Bytes b = std::move(q_.front());
  q_.pop_front();
  return b;
}

void ByteQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool ByteQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

Result<Bytes> PipeChannel::roundtrip(BytesView request) {
  if (!pipe_.to_server.push(Bytes(request.begin(), request.end()))) {
    return Error(Errc::kIoError, "pipe: server side closed");
  }
  std::optional<Bytes> resp = pipe_.to_client.pop();
  if (!resp) {
    return Error(Errc::kIoError, "pipe: connection closed mid-request");
  }
  return std::move(*resp);
}

ServerPump::ServerPump(Pipe& pipe, Handler handler) : pipe_(pipe) {
  thread_ = std::thread([this, handler = std::move(handler)] {
    while (auto req = pipe_.to_server.pop()) {
      pipe_.to_client.push(handler(*req));
    }
    pipe_.to_client.close();
  });
}

ServerPump::~ServerPump() {
  stop();
}

void ServerPump::stop() {
  pipe_.to_server.close();
  if (thread_.joinable()) {
    thread_.join();
  }
}

}  // namespace fgad::net
