// In-memory cross-thread transport: a pair of blocking byte-string queues.
//
// PipeChannel lets tests and examples run the CloudServer on a separate
// thread without sockets, exercising the same serialize-send-receive shape
// as TCP. ServerPump drains the request queue, invokes the handler, and
// pushes responses until closed.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <thread>

#include "net/transport.h"

namespace fgad::net {

/// Thread-safe blocking queue of byte strings with shutdown support.
class ByteQueue {
 public:
  /// Enqueues; returns false if the queue was closed.
  bool push(Bytes b);

  /// Blocks for the next element; nullopt once closed and drained.
  std::optional<Bytes> pop();

  /// Wakes all waiters; subsequent push() calls fail.
  void close();

  bool closed() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Bytes> q_;
  bool closed_ = false;
};

/// A bidirectional in-memory pipe between one client and one server.
struct Pipe {
  ByteQueue to_server;
  ByteQueue to_client;

  void close() {
    to_server.close();
    to_client.close();
  }
};

/// Client end of a Pipe.
class PipeChannel final : public RpcChannel {
 public:
  explicit PipeChannel(Pipe& pipe) : pipe_(pipe) {}

  Result<Bytes> roundtrip(BytesView request) override;

 private:
  Pipe& pipe_;
};

/// Server end: runs `handler` for each request on a dedicated thread until
/// the pipe closes. Joins on destruction.
class ServerPump {
 public:
  using Handler = std::function<Bytes(BytesView)>;

  ServerPump(Pipe& pipe, Handler handler);
  ~ServerPump();

  ServerPump(const ServerPump&) = delete;
  ServerPump& operator=(const ServerPump&) = delete;

  /// Closes the pipe and joins the server thread.
  void stop();

 private:
  Pipe& pipe_;
  std::thread thread_;
};

}  // namespace fgad::net
