// TCP transport (POSIX sockets) with u32 length-prefixed framing.
//
// The paper ran the client in a lab against EC2 instances; our TcpChannel /
// TcpServer reproduce the same client/server split over real sockets (the
// benchmarks use the loopback interface — see DESIGN.md's substitution
// table). Messages are framed as u32-LE length followed by the payload.
//
// Robustness (DESIGN.md §11): every socket operation runs on a non-blocking
// fd behind a poll()-based deadline, so a stalled or malicious peer can
// only cost the caller its configured timeout, never a hang. Frame-size
// limits are enforced symmetrically on send and receive. Failures surface
// through the structured taxonomy in common/result.h: kTimeout (deadline
// expired), kConnReset (peer closed/reset), kIoError (other socket
// failure), kDecodeError (frame-limit violations).
//
// Server core (DESIGN.md §15): an epoll (fallback: poll) reactor. A small
// fixed set of IOWorker event-loop threads each owns a share of the
// non-blocking connection fds; per-connection read/write buffers support
// request pipelining — multiple frames in flight per connection, responses
// written back in request-arrival order regardless of the order handlers
// complete in. Idle and write-stall deadlines are folded into the event
// loop, and the accept path backs off (instead of dying) under fd
// exhaustion. `Options::max_workers` keeps its historical meaning as the
// concurrent-connection bound: at the bound the accept loop stops
// accepting and the kernel backlog queues the overflow.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/transport.h"

namespace fgad::net {

inline constexpr std::uint32_t kMaxFrameSize = 1u << 30;  // 1 GiB sanity cap

/// Timeout convention used throughout this header: milliseconds, with
/// `kNoTimeout` (-1) meaning "block indefinitely".
inline constexpr int kNoTimeout = -1;

/// Writes one framed message to `fd` within `timeout_ms`. Rejects payloads
/// over kMaxFrameSize (which also covers >4 GiB payloads that would
/// silently truncate through the u32 header) with the same kDecodeError
/// the receive side produces for an oversized frame.
Status write_frame(int fd, BytesView payload, int timeout_ms = kNoTimeout);

/// Reads one framed message from `fd` within `timeout_ms`. kTimeout when
/// the deadline expires, kConnReset when the peer closes/resets.
Result<Bytes> read_frame(int fd, int timeout_ms = kNoTimeout);

/// Client-side TCP connection.
class TcpChannel final : public RpcChannel {
 public:
  struct Options {
    int connect_timeout_ms = 5000;  // deadline for the TCP handshake
    int io_timeout_ms = 30000;      // per read/write-frame deadline
  };

  /// Connects to host:port (numeric IPv4 host, e.g. "127.0.0.1").
  static Result<std::unique_ptr<TcpChannel>> connect(const std::string& host,
                                                     std::uint16_t port);
  static Result<std::unique_ptr<TcpChannel>> connect(const std::string& host,
                                                     std::uint16_t port,
                                                     Options opts);
  ~TcpChannel() override;

  TcpChannel(const TcpChannel&) = delete;
  TcpChannel& operator=(const TcpChannel&) = delete;

  Result<Bytes> roundtrip(BytesView request) override;

  /// Pipelined batch: all requests are written without waiting for the
  /// responses, full-duplex (reads interleave with writes so neither
  /// side's socket buffer can deadlock a large batch). Responses come
  /// back in request order, as guaranteed by the reactor server. The
  /// io_timeout_ms deadline is an *inactivity* deadline: it resets on any
  /// byte of progress, so a big batch is not held to a single-frame
  /// budget.
  Result<std::vector<Bytes>> roundtrip_batch(
      const std::vector<Bytes>& requests) override;

 private:
  TcpChannel(int fd, Options opts) : fd_(fd), opts_(opts) {}
  int fd_;
  Options opts_;
};

/// Epoll/poll reactor server. A bounded set of connections (backpressure
/// via the listen backlog at `max_workers`) is multiplexed over
/// `io_workers` event-loop threads; each connection supports up to
/// `max_pipeline` requests in flight with responses written in arrival
/// order.
class TcpServer {
 public:
  using Handler = std::function<Bytes(BytesView)>;

  /// Completion callback for one pipelined request. Thread-safe: may be
  /// invoked from any thread (a group-commit syncer, a thread pool, or
  /// inline from the handler), at most once. Invoking it after the server
  /// stopped or the connection died is safe and drops the response.
  using Respond = std::function<void(Bytes)>;

  /// Asynchronous handler: take ownership of the request, produce the
  /// response on any thread, and hand it to `respond`. The reactor keeps
  /// accepting further pipelined frames on the same connection while
  /// earlier responses are pending and writes responses back in request
  /// order.
  using AsyncHandler = std::function<void(Bytes request, Respond respond)>;

  struct Options {
    std::size_t max_workers = 64;   // concurrent-connection bound
    std::size_t io_workers = 0;     // event-loop threads (0 = auto)
    std::size_t max_pipeline = 32;  // frames in flight per connection
    // Slow-reader budget: a connection whose pending response bytes
    // exceed this stops being read from until the peer drains.
    std::size_t write_buffer_limit = 64u << 20;
    int backlog = 16;               // listen(2) queue (holds the overflow)
    int idle_timeout_ms = kNoTimeout;  // evict connections idle this long
    int io_timeout_ms = 30000;      // write-stall eviction deadline
  };

  /// Binds to 127.0.0.1:`port` (0 = ephemeral). Prefer create(); these
  /// legacy constructors report bind/listen failure only via ok().
  TcpServer(std::uint16_t port, Handler handler);
  TcpServer(std::uint16_t port, Handler handler, Options opts);
  TcpServer(std::uint16_t port, AsyncHandler handler, Options opts);
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Checked construction: surfaces the bind/listen errno as an Error
  /// instead of a silent dead server.
  static Result<std::unique_ptr<TcpServer>> create(std::uint16_t port,
                                                   Handler handler);
  static Result<std::unique_ptr<TcpServer>> create(std::uint16_t port,
                                                   Handler handler,
                                                   Options opts);
  static Result<std::unique_ptr<TcpServer>> create(std::uint16_t port,
                                                   AsyncHandler handler,
                                                   Options opts);

  bool ok() const { return listen_fd_ >= 0; }
  std::uint16_t port() const { return port_; }

  /// Live connections (name kept from the thread-per-connection era; one
  /// "worker" is now one connection multiplexed onto an event loop).
  std::size_t active_workers() const;
  /// High-water mark of concurrent connections over the server's lifetime.
  std::size_t peak_workers() const;
  /// Event-loop threads actually running.
  std::size_t io_worker_count() const { return workers_.size(); }

  /// Stops accepting, closes the listener, unwinds every event loop
  /// (closing all connection fds), and joins the threads.
  void stop();

 private:
  class IOWorker;
  friend class IOWorker;

  TcpServer(std::uint16_t port, Handler sync_handler, AsyncHandler handler,
            Options opts, std::string* error_out);

  void accept_loop();
  /// IOWorker notifies the accept loop's backpressure gate here whenever
  /// a connection it owns goes away.
  void on_connection_closed();

  AsyncHandler handler_;
  Options opts_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::vector<std::unique_ptr<IOWorker>> workers_;
  mutable std::mutex conn_mu_;
  std::condition_variable conn_cv_;
  std::size_t active_ = 0;  // live connections across all IOWorkers
  std::size_t peak_ = 0;
};

}  // namespace fgad::net
