// TCP transport (POSIX sockets) with u32 length-prefixed framing.
//
// The paper ran the client in a lab against EC2 instances; our TcpChannel /
// TcpServer reproduce the same client/server split over real sockets (the
// benchmarks use the loopback interface — see DESIGN.md's substitution
// table). Messages are framed as u32-LE length followed by the payload.
//
// Robustness (DESIGN.md §11): every socket operation runs on a non-blocking
// fd behind a poll()-based deadline, so a stalled or malicious peer can
// only cost the caller its configured timeout, never a hang. Frame-size
// limits are enforced symmetrically on send and receive. The server runs a
// bounded worker pool: finished workers deregister their fd and are reaped,
// and the accept loop applies backpressure (stops accepting) at the bound.
// Failures surface through the structured taxonomy in common/result.h:
// kTimeout (deadline expired), kConnReset (peer closed/reset), kIoError
// (other socket failure), kDecodeError (frame-limit violations).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/transport.h"

namespace fgad::net {

inline constexpr std::uint32_t kMaxFrameSize = 1u << 30;  // 1 GiB sanity cap

/// Timeout convention used throughout this header: milliseconds, with
/// `kNoTimeout` (-1) meaning "block indefinitely".
inline constexpr int kNoTimeout = -1;

/// Writes one framed message to `fd` within `timeout_ms`. Rejects payloads
/// over kMaxFrameSize (which also covers >4 GiB payloads that would
/// silently truncate through the u32 header) with the same kDecodeError
/// the receive side produces for an oversized frame.
Status write_frame(int fd, BytesView payload, int timeout_ms = kNoTimeout);

/// Reads one framed message from `fd` within `timeout_ms`. kTimeout when
/// the deadline expires, kConnReset when the peer closes/resets.
Result<Bytes> read_frame(int fd, int timeout_ms = kNoTimeout);

/// Client-side TCP connection.
class TcpChannel final : public RpcChannel {
 public:
  struct Options {
    int connect_timeout_ms = 5000;  // deadline for the TCP handshake
    int io_timeout_ms = 30000;      // per read/write-frame deadline
  };

  /// Connects to host:port (numeric IPv4 host, e.g. "127.0.0.1").
  static Result<std::unique_ptr<TcpChannel>> connect(const std::string& host,
                                                     std::uint16_t port);
  static Result<std::unique_ptr<TcpChannel>> connect(const std::string& host,
                                                     std::uint16_t port,
                                                     Options opts);
  ~TcpChannel() override;

  TcpChannel(const TcpChannel&) = delete;
  TcpChannel& operator=(const TcpChannel&) = delete;

  Result<Bytes> roundtrip(BytesView request) override;

 private:
  TcpChannel(int fd, Options opts) : fd_(fd), opts_(opts) {}
  int fd_;
  Options opts_;
};

/// Accept-loop server with a bounded, reaped worker pool (one worker per
/// live connection; the accept loop blocks — backpressure via the listen
/// backlog — once `max_workers` connections are in flight).
class TcpServer {
 public:
  using Handler = std::function<Bytes(BytesView)>;

  struct Options {
    std::size_t max_workers = 64;   // concurrent-connection bound
    int backlog = 16;               // listen(2) queue (holds the overflow)
    int idle_timeout_ms = kNoTimeout;  // evict connections idle this long
    int io_timeout_ms = 30000;      // per-frame write deadline to a client
  };

  /// Binds to 127.0.0.1:`port` (0 = ephemeral). Prefer create(); this
  /// legacy constructor reports bind/listen failure only via ok().
  TcpServer(std::uint16_t port, Handler handler);
  TcpServer(std::uint16_t port, Handler handler, Options opts);
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Checked construction: surfaces the bind/listen errno as an Error
  /// instead of a silent dead server.
  static Result<std::unique_ptr<TcpServer>> create(std::uint16_t port,
                                                   Handler handler);
  static Result<std::unique_ptr<TcpServer>> create(std::uint16_t port,
                                                   Handler handler,
                                                   Options opts);

  bool ok() const { return listen_fd_ >= 0; }
  std::uint16_t port() const { return port_; }

  /// Live (not yet finished) connection workers.
  std::size_t active_workers() const;
  /// High-water mark of concurrent workers over the server's lifetime.
  std::size_t peak_workers() const;

  /// Stops accepting, closes the listener, unblocks and joins all workers.
  void stop();

 private:
  struct Worker {
    std::thread thread;
    int fd = -1;       // -1 once the worker has deregistered + closed it
    bool done = false;  // set by the worker as its last action
  };

  TcpServer(std::uint16_t port, Handler handler, Options opts,
            std::string* error_out);

  void accept_loop();
  void serve_connection(int fd, Worker* self);
  /// Joins and erases finished workers. Requires workers_mu_ held.
  void reap_finished_locked();

  Handler handler_;
  Options opts_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  mutable std::mutex workers_mu_;
  std::condition_variable workers_cv_;
  std::list<Worker> workers_;  // std::list: Worker* stays valid across ops
  std::size_t active_ = 0;
  std::size_t peak_ = 0;
};

}  // namespace fgad::net
