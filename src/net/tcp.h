// TCP transport (POSIX sockets) with u32 length-prefixed framing.
//
// The paper ran the client in a lab against EC2 instances; our TcpChannel /
// TcpServer reproduce the same client/server split over real sockets (the
// benchmarks use the loopback interface — see DESIGN.md's substitution
// table). One server thread per connection; messages are framed as
// u32-LE length followed by the payload.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "net/transport.h"

namespace fgad::net {

inline constexpr std::uint32_t kMaxFrameSize = 1u << 30;  // 1 GiB sanity cap

/// Writes one framed message to `fd`. Returns false on error.
bool write_frame(int fd, BytesView payload);

/// Reads one framed message from `fd`; nullopt-style via Result.
Result<Bytes> read_frame(int fd);

/// Client-side TCP connection.
class TcpChannel final : public RpcChannel {
 public:
  /// Connects to host:port (numeric IPv4 host, e.g. "127.0.0.1").
  static Result<std::unique_ptr<TcpChannel>> connect(const std::string& host,
                                                     std::uint16_t port);
  ~TcpChannel() override;

  TcpChannel(const TcpChannel&) = delete;
  TcpChannel& operator=(const TcpChannel&) = delete;

  Result<Bytes> roundtrip(BytesView request) override;

 private:
  explicit TcpChannel(int fd) : fd_(fd) {}
  int fd_;
};

/// Accept-loop server: spawns one handler thread per connection.
class TcpServer {
 public:
  using Handler = std::function<Bytes(BytesView)>;

  /// Binds to 127.0.0.1:`port` (0 = ephemeral). Check `ok()` then `port()`.
  TcpServer(std::uint16_t port, Handler handler);
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  bool ok() const { return listen_fd_ >= 0; }
  std::uint16_t port() const { return port_; }

  /// Stops accepting, closes the listener, and joins all threads.
  void stop();

 private:
  void accept_loop();

  Handler handler_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::mutex workers_mu_;
  std::vector<std::thread> workers_;
  std::vector<int> worker_fds_;
};

}  // namespace fgad::net
