#include "net/fault.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "proto/messages.h"

namespace fgad::net {

double FaultInjectingChannel::next_unit() {
  // splitmix64; deterministic under Options::seed.
  rng_state_ += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = rng_state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return static_cast<double>(z >> 11) / 9007199254740992.0;
}

Result<Bytes> FaultInjectingChannel::roundtrip(BytesView request) {
  int delay_ms = 0;
  enum class Fault {
    kNone, kDropReq, kDisconnect, kDropResp, kTrunc, kFlip,
    kPartTo, kPartFrom, kReorder,
  };
  Fault fault = Fault::kNone;
  std::uint64_t cut = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.rpcs;
    if (dead_) {
      return Error(Errc::kConnReset, "fault: connection is down");
    }
    const auto tag = proto::split_tagged(request);
    const std::uint64_t rid = tag ? tag->first : 0;
    // `code` is the stable FrEvent::kFaultInjected `a` value for this
    // fault kind (documented in DESIGN.md §14), independent of the local
    // Fault enum so dumps stay decodable if that enum is reordered.
    const auto injected = [rid](const char* kind, std::uint64_t code) {
      obs::Registry::instance()
          .counter(std::string("fgad_fault_injected_") + kind + "_total")
          .inc();
      obs::FlightRecorder::instance().record(obs::FrEvent::kFaultInjected,
                                             rid, code);
    };
    // The stateful partition outranks the probabilistic draws: a scripted
    // failover test wants EVERY roundtrip through the cut to blackhole.
    if (partition_ == Partition::kToServer) {
      fault = Fault::kPartTo;
      ++counters_.partitioned_to_server;
      injected("partition_to_server", 6);
    } else if (partition_ == Partition::kFromServer) {
      fault = Fault::kPartFrom;
      ++counters_.partitioned_from_server;
      injected("partition_from_server", 7);
    } else if (next_unit() < opts_.drop_request) {
      fault = Fault::kDropReq;
      ++counters_.dropped_requests;
      injected("drop_request", 0);
    } else if (next_unit() < opts_.disconnect) {
      fault = Fault::kDisconnect;
      dead_ = true;
      ++counters_.disconnects;
      injected("disconnect", 1);
    } else if (next_unit() < opts_.drop_response) {
      fault = Fault::kDropResp;
      ++counters_.dropped_responses;
      injected("drop_response", 2);
    } else if (next_unit() < opts_.truncate_response) {
      fault = Fault::kTrunc;
      ++counters_.truncated;
      injected("truncate", 3);
    } else if (next_unit() < opts_.bitflip_response) {
      fault = Fault::kFlip;
      ++counters_.bitflipped;
      injected("bitflip", 4);
    } else if (next_unit() < opts_.partition_to_server) {
      fault = Fault::kPartTo;
      ++counters_.partitioned_to_server;
      injected("partition_to_server", 6);
    } else if (next_unit() < opts_.partition_from_server) {
      fault = Fault::kPartFrom;
      ++counters_.partitioned_from_server;
      injected("partition_from_server", 7);
    } else if (next_unit() < opts_.reorder) {
      fault = Fault::kReorder;
      ++counters_.reordered;
      injected("reorder", 8);
    }
    if (next_unit() < opts_.delay) {
      delay_ms = opts_.delay_ms;
      ++counters_.delayed;
      injected("delay", 5);
    }
    cut = static_cast<std::uint64_t>(next_unit() * (1u << 30));
  }
  if (delay_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
  }
  switch (fault) {
    case Fault::kDropReq:
      // The server never saw the request; a real socket would surface this
      // as a read deadline expiring on the (never-arriving) response.
      return Error(Errc::kTimeout, "fault: request dropped");
    case Fault::kPartTo:
      // One-way cut toward the server: indistinguishable from a dropped
      // request, but (statefully) it keeps happening until heal().
      return Error(Errc::kTimeout, "fault: partitioned toward server");
    case Fault::kDisconnect:
      return Error(Errc::kConnReset, "fault: connection reset mid-frame");
    default:
      break;
  }
  Result<Bytes> resp = inner_->roundtrip(request);
  if (!resp) {
    return resp;
  }
  Bytes payload = std::move(resp).value();
  switch (fault) {
    case Fault::kDropResp:
      return Error(Errc::kTimeout, "fault: response dropped");
    case Fault::kPartFrom:
      // The mutation executed server-side; only the ack is gone. This is
      // the indeterminate-commit case: the caller must resend under its
      // original rid and let the durable server's dedup converge it.
      return Error(Errc::kTimeout, "fault: partitioned from server");
    case Fault::kReorder: {
      std::lock_guard<std::mutex> lock(mu_);
      held_.push_back(std::move(payload));
      if (held_.size() > std::max<std::size_t>(1, opts_.reorder_window)) {
        Bytes stale = std::move(held_.front());
        held_.pop_front();
        return stale;  // an EARLIER roundtrip's response, out of order
      }
      // Window not yet full: the response is merely late past the deadline.
      return Error(Errc::kTimeout, "fault: response reordered past deadline");
    }
    case Fault::kTrunc:
      if (!payload.empty()) {
        payload.resize(cut % payload.size());
      }
      return payload;
    case Fault::kFlip:
      if (!payload.empty()) {
        payload[cut % payload.size()] ^=
            static_cast<std::uint8_t>(1u << (cut % 8));
      }
      return payload;
    default:
      return payload;
  }
}

bool FaultInjectingChannel::dead() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dead_;
}

void FaultInjectingChannel::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  dead_ = false;
  partition_ = Partition::kNone;
}

void FaultInjectingChannel::partition(Partition dir) {
  std::lock_guard<std::mutex> lock(mu_);
  partition_ = dir;
}

void FaultInjectingChannel::heal() {
  std::lock_guard<std::mutex> lock(mu_);
  partition_ = Partition::kNone;
}

FaultInjectingChannel::Partition FaultInjectingChannel::partitioned() const {
  std::lock_guard<std::mutex> lock(mu_);
  return partition_;
}

FaultInjectingChannel::Counters FaultInjectingChannel::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

}  // namespace fgad::net
