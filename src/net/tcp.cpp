#include "net/tcp.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace fgad::net {

namespace {

bool write_all(int fd, const std::uint8_t* data, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::send(fd, data, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

bool read_all(int fd, std::uint8_t* data, std::size_t n) {
  while (n > 0) {
    const ssize_t r = ::recv(fd, data, n, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (r == 0) {
      return false;  // peer closed
    }
    data += r;
    n -= static_cast<std::size_t>(r);
  }
  return true;
}

}  // namespace

bool write_frame(int fd, BytesView payload) {
  std::uint8_t hdr[4];
  const auto len = static_cast<std::uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    hdr[i] = static_cast<std::uint8_t>(len >> (8 * i));
  }
  if (!write_all(fd, hdr, sizeof(hdr))) {
    return false;
  }
  return payload.empty() || write_all(fd, payload.data(), payload.size());
}

Result<Bytes> read_frame(int fd) {
  std::uint8_t hdr[4];
  if (!read_all(fd, hdr, sizeof(hdr))) {
    return Error(Errc::kIoError, "tcp: connection closed");
  }
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<std::uint32_t>(hdr[i]) << (8 * i);
  }
  if (len > kMaxFrameSize) {
    return Error(Errc::kDecodeError, "tcp: frame too large");
  }
  Bytes payload(len);
  if (len > 0 && !read_all(fd, payload.data(), len)) {
    return Error(Errc::kIoError, "tcp: truncated frame");
  }
  return payload;
}

Result<std::unique_ptr<TcpChannel>> TcpChannel::connect(const std::string& host,
                                                        std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Error(Errc::kIoError, "tcp: socket() failed");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Error(Errc::kInvalidArgument, "tcp: bad host address");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Error(Errc::kIoError, std::string("tcp: connect failed: ") +
                                     std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::unique_ptr<TcpChannel>(new TcpChannel(fd));
}

TcpChannel::~TcpChannel() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

Result<Bytes> TcpChannel::roundtrip(BytesView request) {
  if (!write_frame(fd_, request)) {
    return Error(Errc::kIoError, "tcp: send failed");
  }
  return read_frame(fd_);
}

TcpServer::TcpServer(std::uint16_t port, Handler handler)
    : handler_(std::move(handler)) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listen_fd_, 16) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = ntohs(addr.sin_port);
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
}

TcpServer::~TcpServer() {
  stop();
}

void TcpServer::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR && !stopping_.load()) continue;
      break;  // listener closed or shutting down
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::lock_guard<std::mutex> lock(workers_mu_);
    worker_fds_.push_back(fd);
    workers_.emplace_back([this, fd] {
      for (;;) {
        Result<Bytes> req = read_frame(fd);
        if (!req) {
          break;
        }
        if (!write_frame(fd, handler_(req.value()))) {
          break;
        }
      }
      ::close(fd);
    });
  }
}

void TcpServer::stop() {
  if (stopping_.exchange(true)) {
    return;
  }
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
  }
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(workers_mu_);
    workers.swap(workers_);
    // Unblock workers parked in read_frame on live connections.
    for (int fd : worker_fds_) {
      ::shutdown(fd, SHUT_RDWR);
    }
    worker_fds_.clear();
  }
  for (std::thread& t : workers) {
    if (t.joinable()) {
      t.join();
    }
  }
  listen_fd_ = -1;
}

}  // namespace fgad::net
