#include "net/tcp.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#if defined(__linux__)
#define FGAD_HAVE_EPOLL 1
#include <sys/epoll.h>
#endif

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <unordered_map>

#include "obs/metrics.h"

namespace fgad::net {

namespace {

using Clock = std::chrono::steady_clock;

/// A per-frame deadline. remaining() clamps to [0, start budget]; a value
/// of kNoTimeout disables the deadline entirely (poll blocks forever).
class Deadline {
 public:
  explicit Deadline(int timeout_ms) : timeout_ms_(timeout_ms) {
    if (timeout_ms_ >= 0) {
      expiry_ = Clock::now() + std::chrono::milliseconds(timeout_ms_);
    }
  }

  bool unlimited() const { return timeout_ms_ < 0; }

  /// Milliseconds left (poll() argument): -1 when unlimited, else >= 0.
  int remaining_ms() const {
    if (unlimited()) {
      return -1;
    }
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                          expiry_ - Clock::now())
                          .count();
    return static_cast<int>(std::max<long long>(0, left));
  }

  bool expired() const { return !unlimited() && remaining_ms() == 0; }

 private:
  int timeout_ms_;
  Clock::time_point expiry_;
};

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

void set_nodelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// Waits for `events` on `fd` until the deadline. OK means the fd is ready.
Status poll_ready(int fd, short events, const Deadline& dl) {
  for (;;) {
    pollfd p{fd, events, 0};
    const int rc = ::poll(&p, 1, dl.remaining_ms());
    if (rc > 0) {
      return Status::ok();
    }
    if (rc == 0) {
      return Status(Errc::kTimeout, "tcp: operation timed out");
    }
    if (errno == EINTR) {
      if (dl.expired()) {
        return Status(Errc::kTimeout, "tcp: operation timed out");
      }
      continue;
    }
    return Status(Errc::kIoError,
                  std::string("tcp: poll failed: ") + std::strerror(errno));
  }
}

Status map_io_errno(const char* what) {
  if (errno == ECONNRESET || errno == EPIPE) {
    return Status(Errc::kConnReset,
                  std::string("tcp: ") + what + ": connection reset");
  }
  return Status(Errc::kIoError,
                std::string("tcp: ") + what + ": " + std::strerror(errno));
}

Status write_all(int fd, const std::uint8_t* data, std::size_t n,
                 const Deadline& dl) {
  while (n > 0) {
    const ssize_t w = ::send(fd, data, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (auto st = poll_ready(fd, POLLOUT, dl); !st) {
          return st;
        }
        continue;
      }
      return map_io_errno("send");
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
  return Status::ok();
}

Status read_all(int fd, std::uint8_t* data, std::size_t n, const Deadline& dl) {
  while (n > 0) {
    const ssize_t r = ::recv(fd, data, n, 0);
    if (r < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (auto st = poll_ready(fd, POLLIN, dl); !st) {
          return st;
        }
        continue;
      }
      return map_io_errno("recv");
    }
    if (r == 0) {
      return Status(Errc::kConnReset, "tcp: peer closed the connection");
    }
    data += r;
    n -= static_cast<std::size_t>(r);
  }
  return Status::ok();
}

void put_frame_header(Bytes& out, std::uint32_t len) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(len >> (8 * i)));
  }
}

obs::Counter& frames_out_counter() {
  static obs::Counter& c =
      obs::Registry::instance().counter("fgad_tcp_frames_out_total");
  return c;
}
obs::Counter& bytes_out_counter() {
  static obs::Counter& c =
      obs::Registry::instance().counter("fgad_tcp_bytes_out_total");
  return c;
}
obs::Counter& frames_in_counter() {
  static obs::Counter& c =
      obs::Registry::instance().counter("fgad_tcp_frames_in_total");
  return c;
}
obs::Counter& bytes_in_counter() {
  static obs::Counter& c =
      obs::Registry::instance().counter("fgad_tcp_bytes_in_total");
  return c;
}
obs::Counter& timeouts_counter() {
  static obs::Counter& c =
      obs::Registry::instance().counter("fgad_tcp_timeouts_total");
  return c;
}
obs::Counter& resets_counter() {
  static obs::Counter& c =
      obs::Registry::instance().counter("fgad_tcp_conn_resets_total");
  return c;
}
obs::Counter& accepts_counter() {
  static obs::Counter& c =
      obs::Registry::instance().counter("fgad_tcp_accepts_total");
  return c;
}
obs::Counter& accept_backoffs_counter() {
  static obs::Counter& c =
      obs::Registry::instance().counter("fgad_tcp_accept_backoffs_total");
  return c;
}
obs::Counter& reactor_loops_counter() {
  static obs::Counter& c =
      obs::Registry::instance().counter("fgad_net_reactor_loops");
  return c;
}
obs::Gauge& reactor_connections_gauge() {
  static obs::Gauge& g =
      obs::Registry::instance().gauge("fgad_net_reactor_connections");
  return g;
}
obs::Counter& write_stalls_counter() {
  static obs::Counter& c =
      obs::Registry::instance().counter("fgad_net_write_stalls_total");
  return c;
}
// Connections currently blocked on a slow-reading peer / paused for
// backpressure. The SLO tracker windows these to drive the "overloaded"
// readiness signal (DESIGN.md §17).
obs::Gauge& write_stalled_gauge() {
  static obs::Gauge& g =
      obs::Registry::instance().gauge("fgad_net_write_stalled");
  return g;
}
obs::Gauge& backpressure_paused_gauge() {
  static obs::Gauge& g =
      obs::Registry::instance().gauge("fgad_net_backpressure_paused");
  return g;
}
obs::Gauge& active_workers_gauge() {
  static obs::Gauge& g =
      obs::Registry::instance().gauge("fgad_tcp_active_workers");
  return g;
}
obs::Gauge& peak_workers_gauge() {
  static obs::Gauge& g =
      obs::Registry::instance().gauge("fgad_tcp_peak_workers");
  return g;
}

void count_read_failure(const Status& st) {
  if (st.error().code == Errc::kTimeout) {
    timeouts_counter().inc();
  } else if (st.error().code == Errc::kConnReset) {
    resets_counter().inc();
  }
}

// ---- readiness multiplexer -------------------------------------------------

/// Thin epoll wrapper with a poll(2) fallback for non-Linux hosts. Each
/// registered fd carries an opaque `ud` pointer handed back with its
/// events; error/hangup conditions are folded into `readable` so the
/// caller discovers them through the usual recv() path.
class Poller {
 public:
  struct Ev {
    void* ud = nullptr;
    bool readable = false;
    bool writable = false;
  };

  Poller() = default;
  ~Poller() {
#if FGAD_HAVE_EPOLL
    if (ep_ >= 0) {
      ::close(ep_);
    }
#endif
  }
  Poller(const Poller&) = delete;
  Poller& operator=(const Poller&) = delete;

  bool init() {
#if FGAD_HAVE_EPOLL
    ep_ = ::epoll_create1(EPOLL_CLOEXEC);
    return ep_ >= 0;
#else
    return true;
#endif
  }

  bool add(int fd, bool r, bool w, void* ud) {
#if FGAD_HAVE_EPOLL
    epoll_event ev{};
    ev.events = mask(r, w);
    ev.data.ptr = ud;
    return ::epoll_ctl(ep_, EPOLL_CTL_ADD, fd, &ev) == 0;
#else
    entries_.push_back(Entry{fd, r, w, ud});
    return true;
#endif
  }

  bool mod(int fd, bool r, bool w, void* ud) {
#if FGAD_HAVE_EPOLL
    epoll_event ev{};
    ev.events = mask(r, w);
    ev.data.ptr = ud;
    return ::epoll_ctl(ep_, EPOLL_CTL_MOD, fd, &ev) == 0;
#else
    for (Entry& e : entries_) {
      if (e.fd == fd) {
        e.read = r;
        e.write = w;
        e.ud = ud;
        return true;
      }
    }
    return false;
#endif
  }

  void del(int fd) {
#if FGAD_HAVE_EPOLL
    ::epoll_ctl(ep_, EPOLL_CTL_DEL, fd, nullptr);
#else
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->fd == fd) {
        entries_.erase(it);
        return;
      }
    }
#endif
  }

  /// Fills `out` with ready fds (empty on timeout/EINTR).
  void wait(std::vector<Ev>& out, int timeout_ms) {
    out.clear();
#if FGAD_HAVE_EPOLL
    if (evbuf_.size() < 64) {
      evbuf_.resize(64);
    }
    const int n = ::epoll_wait(ep_, evbuf_.data(),
                               static_cast<int>(evbuf_.size()), timeout_ms);
    for (int i = 0; i < n; ++i) {
      Ev ev;
      ev.ud = evbuf_[static_cast<std::size_t>(i)].data.ptr;
      const auto flags = evbuf_[static_cast<std::size_t>(i)].events;
      ev.readable = (flags & (EPOLLIN | EPOLLERR | EPOLLHUP)) != 0;
      ev.writable = (flags & EPOLLOUT) != 0;
      out.push_back(ev);
    }
    if (n == static_cast<int>(evbuf_.size())) {
      evbuf_.resize(evbuf_.size() * 2);  // more fds were ready than slots
    }
#else
    pfds_.clear();
    for (const Entry& e : entries_) {
      short events = 0;
      if (e.read) {
        events |= POLLIN;
      }
      if (e.write) {
        events |= POLLOUT;
      }
      pfds_.push_back(pollfd{e.fd, events, 0});
    }
    const int n = ::poll(pfds_.data(), pfds_.size(), timeout_ms);
    if (n <= 0) {
      return;
    }
    for (std::size_t i = 0; i < pfds_.size(); ++i) {
      const short re = pfds_[i].revents;
      if (re == 0) {
        continue;
      }
      Ev ev;
      ev.ud = entries_[i].ud;
      ev.readable = (re & (POLLIN | POLLERR | POLLHUP | POLLNVAL)) != 0;
      ev.writable = (re & POLLOUT) != 0;
      out.push_back(ev);
    }
#endif
  }

 private:
#if FGAD_HAVE_EPOLL
  static std::uint32_t mask(bool r, bool w) {
    std::uint32_t m = 0;
    if (r) {
      m |= EPOLLIN;
    }
    if (w) {
      m |= EPOLLOUT;
    }
    return m;
  }
  int ep_ = -1;
  std::vector<epoll_event> evbuf_;
#else
  struct Entry {
    int fd;
    bool read;
    bool write;
    void* ud;
  };
  std::vector<Entry> entries_;
  std::vector<pollfd> pfds_;
#endif
};

}  // namespace

// ---- framed I/O ------------------------------------------------------------

Status write_frame(int fd, BytesView payload, int timeout_ms) {
  // Symmetric with the receive-side check below: refuse to put an
  // unreadable frame on the wire. This also catches payloads over 4 GiB,
  // which the u32 header would otherwise silently truncate.
  if (payload.size() > kMaxFrameSize) {
    return Status(Errc::kDecodeError, "tcp: frame too large");
  }
  frames_out_counter().inc();
  bytes_out_counter().inc(payload.size() + 4);
  const Deadline dl(timeout_ms);
  std::uint8_t hdr[4];
  const auto len = static_cast<std::uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    hdr[i] = static_cast<std::uint8_t>(len >> (8 * i));
  }
  if (auto st = write_all(fd, hdr, sizeof(hdr), dl); !st) {
    return st;
  }
  if (payload.empty()) {
    return Status::ok();
  }
  return write_all(fd, payload.data(), payload.size(), dl);
}

Result<Bytes> read_frame(int fd, int timeout_ms) {
  const Deadline dl(timeout_ms);
  std::uint8_t hdr[4];
  if (auto st = read_all(fd, hdr, sizeof(hdr), dl); !st) {
    count_read_failure(st);
    return st.error();
  }
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<std::uint32_t>(hdr[i]) << (8 * i);
  }
  if (len > kMaxFrameSize) {
    return Error(Errc::kDecodeError, "tcp: frame too large");
  }
  Bytes payload(len);
  if (len > 0) {
    if (auto st = read_all(fd, payload.data(), len, dl); !st) {
      count_read_failure(st);
      return st.error();
    }
  }
  frames_in_counter().inc();
  bytes_in_counter().inc(payload.size() + 4);
  return payload;
}

// ---- TcpChannel ------------------------------------------------------------

Result<std::unique_ptr<TcpChannel>> TcpChannel::connect(
    const std::string& host, std::uint16_t port) {
  return connect(host, port, Options{});
}

Result<std::unique_ptr<TcpChannel>> TcpChannel::connect(
    const std::string& host, std::uint16_t port, Options opts) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Error(Errc::kIoError, "tcp: socket() failed");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Error(Errc::kInvalidArgument, "tcp: bad host address");
  }
  if (!set_nonblocking(fd)) {
    ::close(fd);
    return Error(Errc::kIoError, "tcp: could not set O_NONBLOCK");
  }
  const Deadline dl(opts.connect_timeout_ms);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (errno != EINPROGRESS) {
      ::close(fd);
      return Error(Errc::kIoError, std::string("tcp: connect failed: ") +
                                       std::strerror(errno));
    }
    if (auto st = poll_ready(fd, POLLOUT, dl); !st) {
      ::close(fd);
      if (st.error().code == Errc::kTimeout) {
        return Error(Errc::kTimeout, "tcp: connect timed out");
      }
      return st.error();
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      ::close(fd);
      return Error(Errc::kIoError, std::string("tcp: connect failed: ") +
                                       std::strerror(err != 0 ? err : errno));
    }
  }
  set_nodelay(fd);
  return std::unique_ptr<TcpChannel>(new TcpChannel(fd, opts));
}

TcpChannel::~TcpChannel() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

Result<Bytes> TcpChannel::roundtrip(BytesView request) {
  if (auto st = write_frame(fd_, request, opts_.io_timeout_ms); !st) {
    return st.error();
  }
  return read_frame(fd_, opts_.io_timeout_ms);
}

Result<std::vector<Bytes>> TcpChannel::roundtrip_batch(
    const std::vector<Bytes>& requests) {
  std::vector<Bytes> responses;
  if (requests.empty()) {
    return responses;
  }
  std::size_t total = 0;
  for (const Bytes& r : requests) {
    if (r.size() > kMaxFrameSize) {
      return Error(Errc::kDecodeError, "tcp: frame too large");
    }
    total += 4 + r.size();
  }
  // One contiguous outgoing stream; batches are bounded by callers (the
  // client pipelines in pages), so the copy is cheap relative to framing
  // each request with its own syscall pair.
  Bytes out;
  out.reserve(total);
  for (const Bytes& r : requests) {
    put_frame_header(out, static_cast<std::uint32_t>(r.size()));
    append(out, r);
    frames_out_counter().inc();
    bytes_out_counter().inc(r.size() + 4);
  }
  responses.reserve(requests.size());
  std::size_t sent = 0;
  Bytes in;
  std::size_t parsed = 0;
  Deadline dl(opts_.io_timeout_ms);
  std::uint8_t buf[65536];
  while (responses.size() < requests.size()) {
    short events = POLLIN;
    if (sent < out.size()) {
      events = static_cast<short>(events | POLLOUT);
    }
    if (auto st = poll_ready(fd_, events, dl); !st) {
      count_read_failure(st);
      return st.error();
    }
    bool progress = false;
    while (sent < out.size()) {
      const ssize_t n = ::send(fd_, out.data() + sent, out.size() - sent,
                               MSG_NOSIGNAL);
      if (n > 0) {
        sent += static_cast<std::size_t>(n);
        progress = true;
        continue;
      }
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        break;
      }
      return map_io_errno("send").error();
    }
    for (;;) {
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n > 0) {
        append(in, BytesView(buf, static_cast<std::size_t>(n)));
        progress = true;
      } else if (n == 0) {
        const Status st(Errc::kConnReset, "tcp: peer closed the connection");
        count_read_failure(st);
        return st.error();
      } else if (errno == EINTR) {
        continue;
      } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
        break;
      } else {
        return map_io_errno("recv").error();
      }
      while (responses.size() < requests.size() && in.size() - parsed >= 4) {
        std::uint32_t len = 0;
        for (int i = 0; i < 4; ++i) {
          len |= static_cast<std::uint32_t>(in[parsed + i]) << (8 * i);
        }
        if (len > kMaxFrameSize) {
          return Error(Errc::kDecodeError, "tcp: frame too large");
        }
        if (in.size() - parsed - 4 < len) {
          break;
        }
        responses.emplace_back(in.begin() + static_cast<std::ptrdiff_t>(parsed + 4),
                               in.begin() +
                                   static_cast<std::ptrdiff_t>(parsed + 4 + len));
        parsed += 4 + len;
        frames_in_counter().inc();
        bytes_in_counter().inc(len + 4);
      }
      if (parsed == in.size()) {
        in.clear();
        parsed = 0;
      }
      if (responses.size() == requests.size()) {
        break;
      }
    }
    if (progress) {
      // Inactivity deadline: a moving batch is never held to one frame's
      // budget, only a stalled peer trips kTimeout.
      dl = Deadline(opts_.io_timeout_ms);
    }
  }
  if (parsed < in.size()) {
    // The server wrote more frames than we asked for — protocol breach.
    return Error(Errc::kDecodeError, "tcp: unexpected trailing response data");
  }
  return responses;
}

// ---- TcpServer reactor -----------------------------------------------------

namespace {
/// Set while an IOWorker runs its loop; lets a Respond invoked inline from
/// a handler complete without the queue + wake-pipe detour.
thread_local void* t_current_worker_shared = nullptr;
}  // namespace

class TcpServer::IOWorker {
 public:
  explicit IOWorker(TcpServer* server)
      : server_(server), shared_(std::make_shared<Shared>()) {
    shared_->owner = this;
  }

  ~IOWorker() {
    join();
    if (wake_r_ >= 0) {
      ::close(wake_r_);
    }
    if (wake_w_ >= 0) {
      ::close(wake_w_);
    }
  }

  bool start() {
    int pipefd[2];
    if (::pipe(pipefd) != 0) {
      return false;
    }
    wake_r_ = pipefd[0];
    wake_w_ = pipefd[1];
    if (!set_nonblocking(wake_r_) || !set_nonblocking(wake_w_) ||
        !poller_.init() || !poller_.add(wake_r_, true, false, nullptr)) {
      ::close(wake_r_);
      ::close(wake_w_);
      wake_r_ = wake_w_ = -1;
      return false;
    }
    shared_->wake_fd = wake_w_;
    thread_ = std::thread([this] { loop(); });
    return true;
  }

  /// Hands a freshly accepted fd to this worker's event loop. Called from
  /// the accept thread.
  void add_connection(int fd) {
    {
      std::lock_guard<std::mutex> lock(shared_->mu);
      if (!shared_->closed && !shared_->stop) {
        shared_->incoming.push_back(fd);
        wake_locked();
        return;
      }
    }
    ::close(fd);
    server_->on_connection_closed();
  }

  void request_stop() {
    std::lock_guard<std::mutex> lock(shared_->mu);
    shared_->stop = true;
    wake_locked();
  }

  void join() {
    if (thread_.joinable()) {
      thread_.join();
    }
  }

 private:
  struct Conn {
    int fd = -1;
    Bytes rbuf;
    std::size_t roff = 0;  // parse cursor into rbuf
    Bytes wbuf;
    std::size_t woff = 0;  // send cursor into wbuf
    /// One slot per in-flight request, in arrival order; a response is
    /// written out only once every earlier slot has completed.
    struct Slot {
      bool done = false;
      Bytes resp;
    };
    std::deque<Slot> slots;
    std::uint64_t head_seq = 0;  // seq of slots.front()
    std::uint64_t next_seq = 0;  // seq assigned to the next request
    Clock::time_point last_activity;
    Clock::time_point write_stall_start;  // epoch value = not stalled
    bool reg_read = true;   // current poller interest
    bool reg_write = false;
    bool paused = false;  // reading paused for pipeline/write backpressure
    bool rd_eof = false;  // peer half-closed; flush pending, then close
    bool dead = false;
  };

  struct Completion {
    std::weak_ptr<Conn> conn;
    std::uint64_t seq = 0;
    Bytes resp;
  };

  /// Outlives the worker thread: Respond closures and the accept thread
  /// reach the worker only through this block, so a response completing
  /// after stop() is a cheap no-op instead of a use-after-free.
  struct Shared {
    std::mutex mu;
    IOWorker* owner = nullptr;
    int wake_fd = -1;
    bool closed = false;  // worker thread exited; drop everything
    bool stop = false;
    std::vector<int> incoming;
    std::vector<Completion> completions;
  };

  static constexpr std::size_t kCompactThreshold = 1u << 20;

  std::size_t pending_write(const Conn& c) const {
    return c.wbuf.size() - c.woff;
  }

  bool should_pause(const Conn& c) const {
    return c.slots.size() >= server_->opts_.max_pipeline ||
           pending_write(c) > server_->opts_.write_buffer_limit;
  }

  /// A complete frame is buffered and parseable right now.
  bool has_complete_frame(const Conn& c) const {
    const std::size_t avail = c.rbuf.size() - c.roff;
    if (avail < 4) {
      return false;
    }
    std::uint32_t len = 0;
    for (int i = 0; i < 4; ++i) {
      len |= static_cast<std::uint32_t>(c.rbuf[c.roff + i]) << (8 * i);
    }
    return len <= kMaxFrameSize && avail - 4 >= len;
  }

  void wake_locked() {
    if (shared_->wake_fd >= 0) {
      const std::uint8_t one = 1;
      [[maybe_unused]] const ssize_t n =
          ::write(shared_->wake_fd, &one, 1);  // EAGAIN = already pending
    }
  }

  void drain_wake() {
    std::uint8_t buf[256];
    while (::read(wake_r_, buf, sizeof(buf)) > 0) {
    }
  }

  void adopt(int fd) {
    auto c = std::make_shared<Conn>();
    c->fd = fd;
    c->last_activity = Clock::now();
    if (!poller_.add(fd, true, false, c.get())) {
      ::close(fd);
      server_->on_connection_closed();
      return;
    }
    conns_.emplace(fd, std::move(c));
  }

  void close_conn(const std::shared_ptr<Conn>& c) {
    if (c->dead) {
      return;
    }
    c->dead = true;
    if (c->paused) {
      backpressure_paused_gauge().add(-1);
    }
    if (c->write_stall_start != Clock::time_point{}) {
      write_stalled_gauge().add(-1);
    }
    poller_.del(c->fd);
    ::close(c->fd);
    conns_.erase(c->fd);
    server_->on_connection_closed();
  }

  /// Pause-state transitions go through here so the backpressure gauge
  /// tracks the live count of paused connections.
  void set_paused(const std::shared_ptr<Conn>& c, bool paused) {
    if (c->paused != paused) {
      c->paused = paused;
      backpressure_paused_gauge().add(paused ? 1 : -1);
    }
  }

  void clear_write_stall(const std::shared_ptr<Conn>& c) {
    if (c->write_stall_start != Clock::time_point{}) {
      c->write_stall_start = Clock::time_point{};
      write_stalled_gauge().add(-1);
    }
  }

  void update_interest(const std::shared_ptr<Conn>& c) {
    if (c->dead) {
      return;
    }
    const bool want_read = !c->paused && !c->rd_eof;
    const bool want_write = pending_write(*c) > 0;
    if (want_read != c->reg_read || want_write != c->reg_write) {
      c->reg_read = want_read;
      c->reg_write = want_write;
      poller_.mod(c->fd, want_read, want_write, c.get());
    }
  }

  /// Close once the peer half-closed and nothing useful remains: no
  /// in-flight requests, no unsent responses, no buffered complete frame.
  void maybe_close_drained(const std::shared_ptr<Conn>& c) {
    if (!c->dead && c->rd_eof && c->slots.empty() && pending_write(*c) == 0 &&
        !has_complete_frame(*c)) {
      close_conn(c);
    }
  }

  TcpServer::Respond make_respond(const std::shared_ptr<Conn>& c,
                                  std::uint64_t seq) {
    return [sh = shared_, wc = std::weak_ptr<Conn>(c), seq](Bytes resp) {
      if (t_current_worker_shared == sh.get()) {
        // Inline fast path: we are on the owning event loop right now
        // (sync handler, or an async handler completing immediately).
        sh->owner->complete(wc.lock(), seq, std::move(resp));
        return;
      }
      std::lock_guard<std::mutex> lock(sh->mu);
      if (sh->closed) {
        return;  // server stopped; drop the response
      }
      sh->completions.push_back(Completion{std::move(wc), seq,
                                           std::move(resp)});
      if (sh->owner != nullptr) {
        sh->owner->wake_locked();
      }
    };
  }

  void dispatch(const std::shared_ptr<Conn>& c, Bytes req) {
    const std::uint64_t seq = c->next_seq++;
    c->slots.emplace_back();
    server_->handler_(std::move(req), make_respond(c, seq));
  }

  /// Fills the slot for `seq` and flushes any now-contiguous responses.
  void complete(std::shared_ptr<Conn> c, std::uint64_t seq, Bytes resp) {
    if (!c || c->dead || seq < c->head_seq) {
      return;
    }
    const std::size_t idx = static_cast<std::size_t>(seq - c->head_seq);
    if (idx >= c->slots.size() || c->slots[idx].done) {
      return;
    }
    c->slots[idx].done = true;
    c->slots[idx].resp = std::move(resp);
    flush_responses(c);
  }

  void flush_responses(const std::shared_ptr<Conn>& c) {
    bool queued = false;
    while (!c->slots.empty() && c->slots.front().done) {
      Bytes& resp = c->slots.front().resp;
      if (resp.size() > kMaxFrameSize) {
        close_conn(c);
        return;
      }
      put_frame_header(c->wbuf, static_cast<std::uint32_t>(resp.size()));
      append(c->wbuf, resp);
      frames_out_counter().inc();
      bytes_out_counter().inc(resp.size() + 4);
      c->slots.pop_front();
      ++c->head_seq;
      queued = true;
    }
    if (queued) {
      c->last_activity = Clock::now();
      try_write(c);
      if (c->dead) {
        return;
      }
      // Completing responses may have freed pipeline slots: resume
      // reading and parse any frames the peer already buffered.
      if (c->paused && !should_pause(*c)) {
        set_paused(c, false);
        parse_frames(c);
        if (c->dead) {
          return;
        }
      }
      maybe_close_drained(c);
    }
    update_interest(c);
  }

  void try_write(const std::shared_ptr<Conn>& c) {
    while (c->woff < c->wbuf.size()) {
      const ssize_t n = ::send(c->fd, c->wbuf.data() + c->woff,
                               c->wbuf.size() - c->woff, MSG_NOSIGNAL);
      if (n > 0) {
        c->woff += static_cast<std::size_t>(n);
        c->last_activity = Clock::now();
        clear_write_stall(c);
        continue;
      }
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        break;
      }
      resets_counter().inc();
      close_conn(c);
      return;
    }
    if (c->woff == c->wbuf.size()) {
      c->wbuf.clear();
      c->woff = 0;
      clear_write_stall(c);
    } else {
      if (c->woff > kCompactThreshold) {
        c->wbuf.erase(c->wbuf.begin(),
                      c->wbuf.begin() + static_cast<std::ptrdiff_t>(c->woff));
        c->woff = 0;
      }
      if (c->write_stall_start == Clock::time_point{}) {
        c->write_stall_start = Clock::now();
        write_stalls_counter().inc();
        write_stalled_gauge().add(1);
      }
    }
  }

  void parse_frames(const std::shared_ptr<Conn>& c) {
    while (!c->dead) {
      if (should_pause(*c)) {
        break;
      }
      const std::size_t avail = c->rbuf.size() - c->roff;
      if (avail < 4) {
        break;
      }
      std::uint32_t len = 0;
      for (int i = 0; i < 4; ++i) {
        len |= static_cast<std::uint32_t>(c->rbuf[c->roff + i]) << (8 * i);
      }
      if (len > kMaxFrameSize) {
        close_conn(c);  // same contract as read_frame: drop the peer
        return;
      }
      if (avail - 4 < len) {
        break;
      }
      frames_in_counter().inc();
      bytes_in_counter().inc(len + 4);
      Bytes req(c->rbuf.begin() + static_cast<std::ptrdiff_t>(c->roff + 4),
                c->rbuf.begin() +
                    static_cast<std::ptrdiff_t>(c->roff + 4 + len));
      c->roff += 4 + len;
      dispatch(c, std::move(req));
    }
    if (c->dead) {
      return;
    }
    if (c->roff == c->rbuf.size()) {
      c->rbuf.clear();
      c->roff = 0;
    } else if (c->roff > kCompactThreshold) {
      c->rbuf.erase(c->rbuf.begin(),
                    c->rbuf.begin() + static_cast<std::ptrdiff_t>(c->roff));
      c->roff = 0;
    }
    set_paused(c, should_pause(*c));
    update_interest(c);
  }

  void on_readable(const std::shared_ptr<Conn>& c) {
    std::uint8_t buf[65536];
    while (!c->dead && !c->paused && !c->rd_eof) {
      const ssize_t n = ::recv(c->fd, buf, sizeof(buf), 0);
      if (n > 0) {
        append(c->rbuf, BytesView(buf, static_cast<std::size_t>(n)));
        c->last_activity = Clock::now();
        parse_frames(c);
        continue;
      }
      if (n == 0) {
        c->rd_eof = true;
        break;
      }
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        break;
      }
      resets_counter().inc();
      close_conn(c);
      return;
    }
    if (c->dead) {
      return;
    }
    maybe_close_drained(c);
    if (!c->dead) {
      update_interest(c);
    }
  }

  void on_writable(const std::shared_ptr<Conn>& c) {
    try_write(c);
    if (c->dead) {
      return;
    }
    // Draining the write buffer can lift slow-reader backpressure.
    if (c->paused && !should_pause(*c)) {
      set_paused(c, false);
      parse_frames(c);
      if (c->dead) {
        return;
      }
    }
    maybe_close_drained(c);
    if (!c->dead) {
      update_interest(c);
    }
  }

  /// Soonest idle/write-stall deadline across owned connections, as a
  /// poll timeout in ms (-1 = none).
  int next_timeout_ms() const {
    const int idle_ms = server_->opts_.idle_timeout_ms;
    const int io_ms = server_->opts_.io_timeout_ms;
    bool any = false;
    Clock::time_point earliest{};
    auto fold = [&](Clock::time_point t) {
      if (!any || t < earliest) {
        earliest = t;
        any = true;
      }
    };
    for (const auto& [fd, c] : conns_) {
      (void)fd;
      if (idle_ms >= 0 && c->slots.empty() && pending_write(*c) == 0) {
        fold(c->last_activity + std::chrono::milliseconds(idle_ms));
      }
      if (io_ms >= 0 && pending_write(*c) > 0 &&
          c->write_stall_start != Clock::time_point{}) {
        fold(c->write_stall_start + std::chrono::milliseconds(io_ms));
      }
    }
    if (!any) {
      return -1;
    }
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                          earliest - Clock::now())
                          .count();
    return static_cast<int>(std::clamp<long long>(left + 1, 0, 60'000));
  }

  void check_deadlines() {
    const int idle_ms = server_->opts_.idle_timeout_ms;
    const int io_ms = server_->opts_.io_timeout_ms;
    if (idle_ms < 0 && io_ms < 0) {
      return;
    }
    const auto now = Clock::now();
    std::vector<std::shared_ptr<Conn>> expired;
    for (const auto& [fd, c] : conns_) {
      (void)fd;
      // A connection with requests in flight is waiting on the handler,
      // not on the peer — only the write-stall clock applies to it.
      if (idle_ms >= 0 && c->slots.empty() && pending_write(*c) == 0 &&
          now - c->last_activity >= std::chrono::milliseconds(idle_ms)) {
        expired.push_back(c);
        continue;
      }
      if (io_ms >= 0 && pending_write(*c) > 0 &&
          c->write_stall_start != Clock::time_point{} &&
          now - c->write_stall_start >= std::chrono::milliseconds(io_ms)) {
        expired.push_back(c);
      }
    }
    for (const auto& c : expired) {
      timeouts_counter().inc();
      close_conn(c);
    }
  }

  void loop() {
    t_current_worker_shared = shared_.get();
    std::vector<Poller::Ev> evs;
    for (;;) {
      poller_.wait(evs, next_timeout_ms());
      reactor_loops_counter().inc();
      drain_wake();
      bool stop = false;
      std::vector<int> incoming;
      std::vector<Completion> comps;
      {
        std::lock_guard<std::mutex> lock(shared_->mu);
        stop = shared_->stop;
        incoming.swap(shared_->incoming);
        comps.swap(shared_->completions);
      }
      if (stop) {
        for (int fd : incoming) {
          ::close(fd);
          server_->on_connection_closed();
        }
        break;
      }
      for (int fd : incoming) {
        adopt(fd);
      }
      for (const Poller::Ev& ev : evs) {
        if (ev.ud == nullptr) {
          continue;  // wake pipe, drained above
        }
        Conn* raw = static_cast<Conn*>(ev.ud);
        const auto it = conns_.find(raw->fd);
        if (it == conns_.end() || it->second.get() != raw) {
          continue;
        }
        const std::shared_ptr<Conn> c = it->second;
        if (ev.writable) {
          on_writable(c);
        }
        if (ev.readable && !c->dead) {
          on_readable(c);
        }
      }
      for (Completion& comp : comps) {
        complete(comp.conn.lock(), comp.seq, std::move(comp.resp));
      }
      check_deadlines();
    }
    // Teardown: close every owned connection, then cut off late Respond
    // and add_connection calls.
    std::vector<std::shared_ptr<Conn>> remaining;
    remaining.reserve(conns_.size());
    for (const auto& [fd, c] : conns_) {
      (void)fd;
      remaining.push_back(c);
    }
    for (const auto& c : remaining) {
      close_conn(c);
    }
    std::vector<int> late;
    {
      std::lock_guard<std::mutex> lock(shared_->mu);
      shared_->closed = true;
      shared_->wake_fd = -1;
      shared_->owner = nullptr;
      late.swap(shared_->incoming);
      shared_->completions.clear();
    }
    for (int fd : late) {
      ::close(fd);
      server_->on_connection_closed();
    }
    t_current_worker_shared = nullptr;
  }

  TcpServer* server_;
  std::shared_ptr<Shared> shared_;
  std::thread thread_;
  int wake_r_ = -1;
  int wake_w_ = -1;
  Poller poller_;
  std::unordered_map<int, std::shared_ptr<Conn>> conns_;
};

// ---- TcpServer -------------------------------------------------------------

TcpServer::TcpServer(std::uint16_t port, Handler handler)
    : TcpServer(port, std::move(handler), AsyncHandler{}, Options{}, nullptr) {}

TcpServer::TcpServer(std::uint16_t port, Handler handler, Options opts)
    : TcpServer(port, std::move(handler), AsyncHandler{}, opts, nullptr) {}

TcpServer::TcpServer(std::uint16_t port, AsyncHandler handler, Options opts)
    : TcpServer(port, Handler{}, std::move(handler), opts, nullptr) {}

TcpServer::TcpServer(std::uint16_t port, Handler sync_handler,
                     AsyncHandler handler, Options opts,
                     std::string* error_out)
    : handler_(std::move(handler)), opts_(opts) {
  if (!handler_) {
    // Synchronous handlers run inline on the owning event loop; the
    // response completes before the next frame of that connection is
    // parsed, exactly like the old thread-per-connection serve loop.
    handler_ = [h = std::move(sync_handler)](Bytes req, Respond respond) {
      respond(h(BytesView(req)));
    };
  }
  auto fail = [&](const char* what) {
    if (error_out != nullptr) {
      *error_out = std::string(what) + ": " + std::strerror(errno);
    }
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    for (auto& w : workers_) {
      w->request_stop();
    }
    workers_.clear();
  };
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    fail("socket()");
    return;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    fail("bind()");
    return;
  }
  if (::listen(listen_fd_, opts_.backlog) != 0) {
    fail("listen()");
    return;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = ntohs(addr.sin_port);
  }
  std::size_t n = opts_.io_workers;
  if (n == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    n = std::min<std::size_t>(4, std::max(1u, hw));
  }
  n = std::max<std::size_t>(1, std::min(n, opts_.max_workers));
  for (std::size_t i = 0; i < n; ++i) {
    auto w = std::make_unique<IOWorker>(this);
    if (!w->start()) {
      fail("io worker start");
      return;
    }
    workers_.push_back(std::move(w));
  }
  obs::Registry::instance()
      .gauge("fgad_net_reactor_io_workers")
      .set(static_cast<std::int64_t>(workers_.size()));
  accept_thread_ = std::thread([this] { accept_loop(); });
}

Result<std::unique_ptr<TcpServer>> TcpServer::create(std::uint16_t port,
                                                     Handler handler) {
  return create(port, std::move(handler), Options{});
}

Result<std::unique_ptr<TcpServer>> TcpServer::create(std::uint16_t port,
                                                     Handler handler,
                                                     Options opts) {
  std::string error;
  std::unique_ptr<TcpServer> server(new TcpServer(
      port, std::move(handler), AsyncHandler{}, opts, &error));
  if (!server->ok()) {
    return Error(Errc::kIoError, "tcp: server start failed: " + error);
  }
  return server;
}

Result<std::unique_ptr<TcpServer>> TcpServer::create(std::uint16_t port,
                                                     AsyncHandler handler,
                                                     Options opts) {
  std::string error;
  std::unique_ptr<TcpServer> server(
      new TcpServer(port, Handler{}, std::move(handler), opts, &error));
  if (!server->ok()) {
    return Error(Errc::kIoError, "tcp: server start failed: " + error);
  }
  return server;
}

TcpServer::~TcpServer() {
  stop();
}

std::size_t TcpServer::active_workers() const {
  std::lock_guard<std::mutex> lock(conn_mu_);
  return active_;
}

std::size_t TcpServer::peak_workers() const {
  std::lock_guard<std::mutex> lock(conn_mu_);
  return peak_;
}

void TcpServer::on_connection_closed() {
  std::lock_guard<std::mutex> lock(conn_mu_);
  if (active_ > 0) {
    --active_;
  }
  active_workers_gauge().set(static_cast<std::int64_t>(active_));
  reactor_connections_gauge().set(static_cast<std::int64_t>(active_));
  conn_cv_.notify_all();
}

void TcpServer::accept_loop() {
  std::size_t next_worker = 0;
  for (;;) {
    {
      // Backpressure: at the connection bound, stop accepting — the
      // kernel backlog queues (and eventually refuses) the overflow.
      std::unique_lock<std::mutex> lock(conn_mu_);
      conn_cv_.wait(lock, [this] {
        return stopping_.load() || active_ < opts_.max_workers;
      });
      if (stopping_.load()) {
        return;
      }
    }
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load()) {
        return;
      }
      if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN ||
          errno == EWOULDBLOCK) {
        continue;
      }
      if (errno == EBADF || errno == EINVAL) {
        return;  // listener shut down
      }
      // Transient resource exhaustion (EMFILE/ENFILE/ENOBUFS/ENOMEM) or
      // an unexpected errno: the listener stays alive. Back off so the
      // loop does not spin while the process is out of fds; connections
      // already in the backlog are picked up as soon as one frees up.
      accept_backoffs_counter().inc();
      std::unique_lock<std::mutex> lock(conn_mu_);
      conn_cv_.wait_for(lock, std::chrono::milliseconds(50),
                        [this] { return stopping_.load(); });
      continue;
    }
    set_nodelay(fd);
    if (!set_nonblocking(fd)) {
      ::close(fd);
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      if (stopping_.load()) {
        ::close(fd);
        return;
      }
      ++active_;
      peak_ = std::max(peak_, active_);
      accepts_counter().inc();
      active_workers_gauge().set(static_cast<std::int64_t>(active_));
      reactor_connections_gauge().set(static_cast<std::int64_t>(active_));
      peak_workers_gauge().set(static_cast<std::int64_t>(peak_));
    }
    workers_[next_worker % workers_.size()]->add_connection(fd);
    ++next_worker;
  }
}

void TcpServer::stop() {
  if (stopping_.exchange(true)) {
    return;
  }
  {
    // Wake the accept loop if it is parked on the backpressure condition
    // or in an exhaustion backoff.
    std::lock_guard<std::mutex> lock(conn_mu_);
    conn_cv_.notify_all();
  }
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);  // unblocks accept(2)
  }
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (auto& w : workers_) {
    w->request_stop();
  }
  for (auto& w : workers_) {
    w->join();
  }
  workers_.clear();
  std::lock_guard<std::mutex> lock(conn_mu_);
  active_ = 0;
  active_workers_gauge().set(0);
  reactor_connections_gauge().set(0);
}

}  // namespace fgad::net
