#include "net/tcp.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "obs/metrics.h"

namespace fgad::net {

namespace {

using Clock = std::chrono::steady_clock;

/// A per-frame deadline. remaining() clamps to [0, start budget]; a value
/// of kNoTimeout disables the deadline entirely (poll blocks forever).
class Deadline {
 public:
  explicit Deadline(int timeout_ms) : timeout_ms_(timeout_ms) {
    if (timeout_ms_ >= 0) {
      expiry_ = Clock::now() + std::chrono::milliseconds(timeout_ms_);
    }
  }

  bool unlimited() const { return timeout_ms_ < 0; }

  /// Milliseconds left (poll() argument): -1 when unlimited, else >= 0.
  int remaining_ms() const {
    if (unlimited()) {
      return -1;
    }
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                          expiry_ - Clock::now())
                          .count();
    return static_cast<int>(std::max<long long>(0, left));
  }

  bool expired() const { return !unlimited() && remaining_ms() == 0; }

 private:
  int timeout_ms_;
  Clock::time_point expiry_;
};

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

void set_nodelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// Waits for `events` on `fd` until the deadline. OK means the fd is ready.
Status poll_ready(int fd, short events, const Deadline& dl) {
  for (;;) {
    pollfd p{fd, events, 0};
    const int rc = ::poll(&p, 1, dl.remaining_ms());
    if (rc > 0) {
      return Status::ok();
    }
    if (rc == 0) {
      return Status(Errc::kTimeout, "tcp: operation timed out");
    }
    if (errno == EINTR) {
      if (dl.expired()) {
        return Status(Errc::kTimeout, "tcp: operation timed out");
      }
      continue;
    }
    return Status(Errc::kIoError,
                  std::string("tcp: poll failed: ") + std::strerror(errno));
  }
}

Status map_io_errno(const char* what) {
  if (errno == ECONNRESET || errno == EPIPE) {
    return Status(Errc::kConnReset,
                  std::string("tcp: ") + what + ": connection reset");
  }
  return Status(Errc::kIoError,
                std::string("tcp: ") + what + ": " + std::strerror(errno));
}

Status write_all(int fd, const std::uint8_t* data, std::size_t n,
                 const Deadline& dl) {
  while (n > 0) {
    const ssize_t w = ::send(fd, data, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (auto st = poll_ready(fd, POLLOUT, dl); !st) {
          return st;
        }
        continue;
      }
      return map_io_errno("send");
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
  return Status::ok();
}

Status read_all(int fd, std::uint8_t* data, std::size_t n, const Deadline& dl) {
  while (n > 0) {
    const ssize_t r = ::recv(fd, data, n, 0);
    if (r < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (auto st = poll_ready(fd, POLLIN, dl); !st) {
          return st;
        }
        continue;
      }
      return map_io_errno("recv");
    }
    if (r == 0) {
      return Status(Errc::kConnReset, "tcp: peer closed the connection");
    }
    data += r;
    n -= static_cast<std::size_t>(r);
  }
  return Status::ok();
}

}  // namespace

Status write_frame(int fd, BytesView payload, int timeout_ms) {
  // Symmetric with the receive-side check below: refuse to put an
  // unreadable frame on the wire. This also catches payloads over 4 GiB,
  // which the u32 header would otherwise silently truncate.
  if (payload.size() > kMaxFrameSize) {
    return Status(Errc::kDecodeError, "tcp: frame too large");
  }
  static obs::Counter& frames_out =
      obs::Registry::instance().counter("fgad_tcp_frames_out_total");
  static obs::Counter& bytes_out =
      obs::Registry::instance().counter("fgad_tcp_bytes_out_total");
  frames_out.inc();
  bytes_out.inc(payload.size() + 4);
  const Deadline dl(timeout_ms);
  std::uint8_t hdr[4];
  const auto len = static_cast<std::uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    hdr[i] = static_cast<std::uint8_t>(len >> (8 * i));
  }
  if (auto st = write_all(fd, hdr, sizeof(hdr), dl); !st) {
    return st;
  }
  if (payload.empty()) {
    return Status::ok();
  }
  return write_all(fd, payload.data(), payload.size(), dl);
}

namespace {
void count_read_failure(const Status& st) {
  if (st.error().code == Errc::kTimeout) {
    static obs::Counter& timeouts =
        obs::Registry::instance().counter("fgad_tcp_timeouts_total");
    timeouts.inc();
  } else if (st.error().code == Errc::kConnReset) {
    static obs::Counter& resets =
        obs::Registry::instance().counter("fgad_tcp_conn_resets_total");
    resets.inc();
  }
}
}  // namespace

Result<Bytes> read_frame(int fd, int timeout_ms) {
  const Deadline dl(timeout_ms);
  std::uint8_t hdr[4];
  if (auto st = read_all(fd, hdr, sizeof(hdr), dl); !st) {
    count_read_failure(st);
    return st.error();
  }
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<std::uint32_t>(hdr[i]) << (8 * i);
  }
  if (len > kMaxFrameSize) {
    return Error(Errc::kDecodeError, "tcp: frame too large");
  }
  Bytes payload(len);
  if (len > 0) {
    if (auto st = read_all(fd, payload.data(), len, dl); !st) {
      count_read_failure(st);
      return st.error();
    }
  }
  static obs::Counter& frames_in =
      obs::Registry::instance().counter("fgad_tcp_frames_in_total");
  static obs::Counter& bytes_in =
      obs::Registry::instance().counter("fgad_tcp_bytes_in_total");
  frames_in.inc();
  bytes_in.inc(payload.size() + 4);
  return payload;
}

Result<std::unique_ptr<TcpChannel>> TcpChannel::connect(
    const std::string& host, std::uint16_t port) {
  return connect(host, port, Options{});
}

Result<std::unique_ptr<TcpChannel>> TcpChannel::connect(
    const std::string& host, std::uint16_t port, Options opts) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Error(Errc::kIoError, "tcp: socket() failed");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Error(Errc::kInvalidArgument, "tcp: bad host address");
  }
  if (!set_nonblocking(fd)) {
    ::close(fd);
    return Error(Errc::kIoError, "tcp: could not set O_NONBLOCK");
  }
  const Deadline dl(opts.connect_timeout_ms);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (errno != EINPROGRESS) {
      ::close(fd);
      return Error(Errc::kIoError, std::string("tcp: connect failed: ") +
                                       std::strerror(errno));
    }
    if (auto st = poll_ready(fd, POLLOUT, dl); !st) {
      ::close(fd);
      if (st.error().code == Errc::kTimeout) {
        return Error(Errc::kTimeout, "tcp: connect timed out");
      }
      return st.error();
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      ::close(fd);
      return Error(Errc::kIoError, std::string("tcp: connect failed: ") +
                                       std::strerror(err != 0 ? err : errno));
    }
  }
  set_nodelay(fd);
  return std::unique_ptr<TcpChannel>(new TcpChannel(fd, opts));
}

TcpChannel::~TcpChannel() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

Result<Bytes> TcpChannel::roundtrip(BytesView request) {
  if (auto st = write_frame(fd_, request, opts_.io_timeout_ms); !st) {
    return st.error();
  }
  return read_frame(fd_, opts_.io_timeout_ms);
}

TcpServer::TcpServer(std::uint16_t port, Handler handler)
    : TcpServer(port, std::move(handler), Options{}, nullptr) {}

TcpServer::TcpServer(std::uint16_t port, Handler handler, Options opts)
    : TcpServer(port, std::move(handler), opts, nullptr) {}

TcpServer::TcpServer(std::uint16_t port, Handler handler, Options opts,
                     std::string* error_out)
    : handler_(std::move(handler)), opts_(opts) {
  auto fail = [&](const char* what) {
    if (error_out != nullptr) {
      *error_out = std::string(what) + ": " + std::strerror(errno);
    }
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
  };
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    fail("socket()");
    return;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    fail("bind()");
    return;
  }
  if (::listen(listen_fd_, opts_.backlog) != 0) {
    fail("listen()");
    return;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = ntohs(addr.sin_port);
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
}

Result<std::unique_ptr<TcpServer>> TcpServer::create(std::uint16_t port,
                                                     Handler handler) {
  return create(port, std::move(handler), Options{});
}

Result<std::unique_ptr<TcpServer>> TcpServer::create(std::uint16_t port,
                                                     Handler handler,
                                                     Options opts) {
  std::string error;
  std::unique_ptr<TcpServer> server(
      new TcpServer(port, std::move(handler), opts, &error));
  if (!server->ok()) {
    return Error(Errc::kIoError, "tcp: server start failed: " + error);
  }
  return server;
}

TcpServer::~TcpServer() {
  stop();
}

std::size_t TcpServer::active_workers() const {
  std::lock_guard<std::mutex> lock(workers_mu_);
  return active_;
}

std::size_t TcpServer::peak_workers() const {
  std::lock_guard<std::mutex> lock(workers_mu_);
  return peak_;
}

void TcpServer::reap_finished_locked() {
  for (auto it = workers_.begin(); it != workers_.end();) {
    if (it->done) {
      // Safe to join under the lock: a done worker never touches the mutex
      // again (setting `done` was its last locked action).
      if (it->thread.joinable()) {
        it->thread.join();
      }
      it = workers_.erase(it);
    } else {
      ++it;
    }
  }
}

void TcpServer::accept_loop() {
  for (;;) {
    {
      // Backpressure: at the worker bound, stop accepting — the kernel
      // backlog queues (and eventually refuses) the overflow.
      std::unique_lock<std::mutex> lock(workers_mu_);
      reap_finished_locked();
      workers_cv_.wait(lock, [this] {
        return stopping_.load() || active_ < opts_.max_workers;
      });
      if (stopping_.load()) {
        return;
      }
    }
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR && !stopping_.load()) continue;
      return;  // listener shut down
    }
    set_nodelay(fd);
    if (!set_nonblocking(fd)) {
      ::close(fd);
      continue;
    }
    std::lock_guard<std::mutex> lock(workers_mu_);
    if (stopping_.load()) {
      ::close(fd);
      return;
    }
    reap_finished_locked();
    workers_.emplace_back();
    Worker* w = &workers_.back();
    w->fd = fd;
    ++active_;
    peak_ = std::max(peak_, active_);
    static obs::Counter& accepts =
        obs::Registry::instance().counter("fgad_tcp_accepts_total");
    accepts.inc();
    obs::Registry::instance()
        .gauge("fgad_tcp_active_workers")
        .set(static_cast<std::int64_t>(active_));
    obs::Registry::instance()
        .gauge("fgad_tcp_peak_workers")
        .set(static_cast<std::int64_t>(peak_));
    w->thread = std::thread([this, fd, w] { serve_connection(fd, w); });
  }
}

void TcpServer::serve_connection(int fd, Worker* self) {
  for (;;) {
    Result<Bytes> req = read_frame(fd, opts_.idle_timeout_ms);
    if (!req) {
      break;  // peer closed, reset, idle-timed-out, or sent a bad frame
    }
    if (auto st = write_frame(fd, handler_(req.value()), opts_.io_timeout_ms);
        !st) {
      break;
    }
  }
  // Deregister before (and in the same critical section as) closing, so
  // stop() can never ::shutdown() a recycled fd number.
  std::lock_guard<std::mutex> lock(workers_mu_);
  ::close(fd);
  self->fd = -1;
  --active_;
  obs::Registry::instance()
      .gauge("fgad_tcp_active_workers")
      .set(static_cast<std::int64_t>(active_));
  self->done = true;
  workers_cv_.notify_all();
}

void TcpServer::stop() {
  if (stopping_.exchange(true)) {
    return;
  }
  {
    // Wake the accept loop if it is parked on the backpressure condition.
    std::lock_guard<std::mutex> lock(workers_mu_);
    workers_cv_.notify_all();
  }
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);  // unblocks accept(2)
  }
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  std::vector<std::thread> to_join;
  {
    std::lock_guard<std::mutex> lock(workers_mu_);
    for (Worker& w : workers_) {
      if (w.fd >= 0) {
        // Unblock workers parked in read_frame on live connections. Only
        // registered fds are touched; workers deregister-and-close under
        // this same mutex, so the fd cannot have been recycled.
        ::shutdown(w.fd, SHUT_RDWR);
      }
      if (w.thread.joinable()) {
        to_join.push_back(std::move(w.thread));
      }
    }
  }
  for (std::thread& t : to_join) {
    t.join();
  }
  std::lock_guard<std::mutex> lock(workers_mu_);
  workers_.clear();
  active_ = 0;
}

}  // namespace fgad::net
