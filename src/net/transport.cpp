#include "net/transport.h"

namespace fgad::net {

Result<std::vector<Bytes>> RpcChannel::roundtrip_batch(
    const std::vector<Bytes>& requests) {
  std::vector<Bytes> responses;
  responses.reserve(requests.size());
  for (const Bytes& req : requests) {
    Result<Bytes> resp = roundtrip(req);
    if (!resp) {
      return resp.error();
    }
    responses.push_back(std::move(resp).value());
  }
  return responses;
}

}  // namespace fgad::net
