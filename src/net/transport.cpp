#include "net/transport.h"

// Header-only interfaces; this translation unit exists so the library owns
// the vtable anchors.

namespace fgad::net {

// (intentionally empty)

}  // namespace fgad::net
