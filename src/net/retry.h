// Reconnecting retry decorator for RpcChannel.
//
// A production deployment talks to the cloud over links that stall and
// reset. RetryChannel owns a Dialer (a factory that produces a fresh
// connected channel) and, on a transport-level failure (kTimeout,
// kConnReset, kIoError), drops the broken channel and redials with
// exponential backoff plus jitter. The failed request is resent only when
// the caller-supplied predicate says it is safe — by default nothing is
// resent; pair with proto::retryable_request so read-only RPCs (access,
// audit, fetches) retry transparently. Untagged mutating RPCs surface
// the typed error to the caller (DESIGN.md §11 explains why a blind
// deletion/insert replay is unsafe); mutations wrapped in a tagged
// envelope carry a request id a durable server deduplicates, so the
// predicate approves them too — a resend converges exactly-once
// (DESIGN.md §13). When the budget is exhausted the caller gets
// kRetryExhausted carrying the last underlying error.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>

#include "net/tcp.h"
#include "net/transport.h"

namespace fgad::net {

class RetryChannel final : public RpcChannel {
 public:
  /// Produces a fresh connected channel (e.g. wraps TcpChannel::connect).
  using Dialer = std::function<Result<std::unique_ptr<RpcChannel>>()>;
  /// Decides whether a failed request frame may be resent.
  using RetryPredicate = std::function<bool(BytesView request)>;

  struct Options {
    int max_attempts = 4;      // total send attempts for a retryable request
    int base_backoff_ms = 10;  // doubles per attempt ...
    int max_backoff_ms = 2000;  // ... capped here
    double jitter = 0.5;       // uniform multiplier in [1-jitter, 1+jitter]
    std::uint64_t seed = 0x5eedf00dULL;  // jitter RNG (deterministic tests)
    RetryPredicate retryable;  // null = never resend (reconnect-only)
  };

  RetryChannel(Dialer dialer, Options opts);

  Result<Bytes> roundtrip(BytesView request) override;

  /// Drops the current connection (next roundtrip redials).
  void disconnect();

  std::uint64_t dials() const;
  std::uint64_t resends() const;

 private:
  bool transport_error(Errc c) const {
    return c == Errc::kTimeout || c == Errc::kConnReset ||
           c == Errc::kIoError;
  }
  /// Backoff for the given 0-based completed attempt count, with jitter.
  int backoff_ms(int attempt);

  Dialer dialer_;
  Options opts_;
  mutable std::mutex mu_;
  std::unique_ptr<RpcChannel> channel_;
  std::uint64_t rng_state_;
  std::uint64_t dials_ = 0;
  std::uint64_t resends_ = 0;
};

/// Convenience Dialer for TCP endpoints.
RetryChannel::Dialer tcp_dialer(std::string host, std::uint16_t port,
                                TcpChannel::Options opts = {});

}  // namespace fgad::net
