// Client-to-cloud transport abstraction.
//
// The scheme is a request/response protocol, so the client-side seam is a
// synchronous RpcChannel. Three implementations:
//   * DirectChannel   — invokes a server handler in-process (zero copy of
//                       the network stack; used by tests and the large
//                       benchmark sweeps);
//   * PipeChannel     — thread-safe in-memory queue pair (net/inmemory.h),
//                       runs the server on its own thread;
//   * TcpChannel      — real loopback/remote sockets (net/tcp.h).
// CountingChannel decorates any of them and records the exact bytes a real
// deployment would move, which is the paper's communication-overhead metric
// (Table II, Figure 5): payload bytes plus one frame header per message.
// Two more decorators harden and test the seam (DESIGN.md §11):
//   * RetryChannel           — reconnect + backoff for idempotent RPCs
//                              (net/retry.h);
//   * FaultInjectingChannel  — drop/delay/truncate/bit-flip/disconnect
//                              fault injection (net/fault.h).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"

namespace fgad::net {

/// Wire frame header size (u32 length prefix), charged per message by
/// CountingChannel so DirectChannel measurements match TCP framing.
inline constexpr std::size_t kFrameHeaderSize = 4;

class RpcChannel {
 public:
  virtual ~RpcChannel() = default;

  /// Sends a request and waits for the response.
  virtual Result<Bytes> roundtrip(BytesView request) = 0;

  /// Sends a batch of requests and returns their responses in request
  /// order. The base implementation round-trips sequentially — correct
  /// on every transport, including decorators whose per-RPC semantics
  /// (retry, fault injection) matter. Pipelining transports (TcpChannel)
  /// override it to keep all requests in flight at once against the
  /// reactor server. The first failed request fails the whole batch.
  virtual Result<std::vector<Bytes>> roundtrip_batch(
      const std::vector<Bytes>& requests);
};

/// In-process loopback: hands the request straight to a server handler.
class DirectChannel final : public RpcChannel {
 public:
  using Handler = std::function<Bytes(BytesView)>;
  explicit DirectChannel(Handler handler) : handler_(std::move(handler)) {}

  Result<Bytes> roundtrip(BytesView request) override {
    return handler_(request);
  }

 private:
  Handler handler_;
};

/// Byte-counting decorator implementing the paper's communication-overhead
/// accounting: "all information that the client receives and sends for an
/// operation".
class CountingChannel final : public RpcChannel {
 public:
  explicit CountingChannel(RpcChannel& inner) : inner_(inner) {}

  Result<Bytes> roundtrip(BytesView request) override {
    sent_ += request.size() + kFrameHeaderSize;
    ++rpcs_;
    Result<Bytes> resp = inner_.roundtrip(request);
    if (resp) {
      received_ += resp.value().size() + kFrameHeaderSize;
    }
    return resp;
  }

  /// Forwards to the inner channel's (possibly pipelined) batch path —
  /// the bytes on the wire are identical either way.
  Result<std::vector<Bytes>> roundtrip_batch(
      const std::vector<Bytes>& requests) override {
    for (const Bytes& r : requests) {
      sent_ += r.size() + kFrameHeaderSize;
      ++rpcs_;
    }
    Result<std::vector<Bytes>> resps = inner_.roundtrip_batch(requests);
    if (resps) {
      for (const Bytes& r : resps.value()) {
        received_ += r.size() + kFrameHeaderSize;
      }
    }
    return resps;
  }

  std::uint64_t bytes_sent() const { return sent_; }
  std::uint64_t bytes_received() const { return received_; }
  std::uint64_t total_bytes() const { return sent_ + received_; }
  std::uint64_t rpc_count() const { return rpcs_; }

  void reset() {
    sent_ = 0;
    received_ = 0;
    rpcs_ = 0;
  }

 private:
  RpcChannel& inner_;
  std::uint64_t sent_ = 0;
  std::uint64_t received_ = 0;
  std::uint64_t rpcs_ = 0;
};

}  // namespace fgad::net
