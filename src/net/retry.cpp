#include "net/retry.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "proto/messages.h"

namespace fgad::net {

namespace {
/// Request id from a tagged frame (0 when untagged) so retry flight
/// events correlate with the server-side WAL/RPC events for the same rid.
std::uint64_t frame_rid(BytesView request) {
  const auto tag = proto::split_tagged(request);
  return tag ? tag->first : 0;
}
}  // namespace

RetryChannel::RetryChannel(Dialer dialer, Options opts)
    : dialer_(std::move(dialer)),
      opts_(opts),
      rng_state_(opts.seed | 1) {}

int RetryChannel::backoff_ms(int attempt) {
  long long ms = opts_.base_backoff_ms;
  for (int i = 0; i < attempt && ms < opts_.max_backoff_ms; ++i) {
    ms *= 2;
  }
  ms = std::min<long long>(ms, opts_.max_backoff_ms);
  // splitmix64 step for the jitter draw; deterministic under opts_.seed.
  rng_state_ += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = rng_state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  const double unit = static_cast<double>(z >> 11) / 9007199254740992.0;
  const double factor = 1.0 + opts_.jitter * (2.0 * unit - 1.0);
  return static_cast<int>(std::max(0.0, static_cast<double>(ms) * factor));
}

Result<Bytes> RetryChannel::roundtrip(BytesView request) {
  std::lock_guard<std::mutex> lock(mu_);
  const bool may_resend = opts_.retryable && opts_.retryable(request);
  const std::uint64_t rid = frame_rid(request);
  Error last(Errc::kIoError, "retry: no attempt made");
  bool sent_once = false;
  for (int attempt = 0; attempt < std::max(1, opts_.max_attempts); ++attempt) {
    if (attempt > 0) {
      const int sleep_ms = backoff_ms(attempt - 1);
      static obs::Counter& backoff_total =
          obs::Registry::instance().counter("fgad_retry_backoff_ms_total");
      backoff_total.inc(static_cast<std::uint64_t>(sleep_ms));
      std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    }
    if (!channel_) {
      auto dialed = dialer_();
      ++dials_;
      static obs::Counter& dial_count =
          obs::Registry::instance().counter("fgad_retry_dials_total");
      dial_count.inc();
      obs::FlightRecorder::instance().record(
          obs::FrEvent::kRetryDial, rid,
          static_cast<std::uint64_t>(attempt));
      if (!dialed) {
        // Dialing sends nothing, so a failed dial is always retryable.
        last = dialed.error();
        continue;
      }
      channel_ = std::move(dialed).value();
    }
    if (sent_once) {
      ++resends_;
      static obs::Counter& resend_count =
          obs::Registry::instance().counter("fgad_retry_resends_total");
      resend_count.inc();
      obs::FlightRecorder::instance().record(
          obs::FrEvent::kRetryResend, rid,
          static_cast<std::uint64_t>(attempt));
    }
    sent_once = true;
    Result<Bytes> resp = channel_->roundtrip(request);
    if (resp) {
      return resp;
    }
    if (!transport_error(resp.error().code)) {
      return resp;  // protocol-level failure: the connection still works
    }
    last = resp.error();
    channel_.reset();  // the connection is suspect; redial before reuse
    if (!may_resend) {
      return resp;
    }
  }
  static obs::Counter& exhausted =
      obs::Registry::instance().counter("fgad_retry_exhausted_total");
  exhausted.inc();
  obs::FlightRecorder::instance().record(
      obs::FrEvent::kRetryExhausted, rid,
      static_cast<std::uint64_t>(std::max(1, opts_.max_attempts)));
  return Error(Errc::kRetryExhausted,
               "retry: gave up after " +
                   std::to_string(std::max(1, opts_.max_attempts)) +
                   " attempts (last: " + last.to_string() + ")");
}

void RetryChannel::disconnect() {
  std::lock_guard<std::mutex> lock(mu_);
  channel_.reset();
}

std::uint64_t RetryChannel::dials() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dials_;
}

std::uint64_t RetryChannel::resends() const {
  std::lock_guard<std::mutex> lock(mu_);
  return resends_;
}

RetryChannel::Dialer tcp_dialer(std::string host, std::uint16_t port,
                                TcpChannel::Options opts) {
  return [host = std::move(host), port,
          opts]() -> Result<std::unique_ptr<RpcChannel>> {
    auto ch = TcpChannel::connect(host, port, opts);
    if (!ch) {
      return ch.error();
    }
    return std::unique_ptr<RpcChannel>(std::move(ch).value());
  };
}

}  // namespace fgad::net
