// Endpoint-rotating failover decorator for RpcChannel (DESIGN.md §18).
//
// A replicated deployment exposes two endpoints; at any moment exactly
// one of them is the primary. FailoverChannel owns the client side of
// that arrangement: it dials endpoints from a Resolver, and rotates to
// the next endpoint when the current one either fails at the transport
// level (kTimeout / kConnReset / kIoError) or answers with kNotPrimary —
// the typed refusal a backup (or a freshly demoted primary) returns for
// every client request.
//
// kNotPrimary is special among retry triggers: it is a *definitive
// not-executed* signal — the refusing node never touched the WAL — so a
// resend is always safe, even for untagged mutations that the plain
// RetryChannel must refuse to replay. Transport-level failures keep the
// usual discipline: resent only when the retryable predicate approves
// (idempotent reads, or tagged mutations the durable server dedups).
//
// The Resolver is invoked on EVERY dial, never cached: if the operator
// repoints a DNS name (or a test rebinds a port) between dials, the
// redial connects to the *current* address. Caching the first resolution
// is exactly the bug that strands a client on a dead primary after
// failover.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "net/tcp.h"
#include "net/transport.h"

namespace fgad::net {

struct Endpoint {
  std::string host;
  std::uint16_t port = 0;
};

class FailoverChannel final : public RpcChannel {
 public:
  /// Current endpoint list, re-invoked on every dial (see file comment).
  using Resolver = std::function<Result<std::vector<Endpoint>>()>;
  /// Connects to one endpoint; tcp_endpoint_dial() for real sockets,
  /// anything in-process for tests.
  using Dial = std::function<Result<std::unique_ptr<RpcChannel>>(
      const Endpoint& ep)>;
  /// Decides whether a transport-failed request may be resent (same
  /// contract as RetryChannel::RetryPredicate).
  using RetryPredicate = std::function<bool(BytesView request)>;

  struct Options {
    int max_attempts = 6;       // total send attempts across endpoints
    int base_backoff_ms = 10;   // doubles per attempt ...
    int max_backoff_ms = 2000;  // ... capped here
    double jitter = 0.5;        // uniform multiplier in [1-jitter, 1+jitter]
    std::uint64_t seed = 0x5eedf00dULL;  // jitter RNG (deterministic tests)
    RetryPredicate retryable;   // null = transport failures never resend
  };

  FailoverChannel(Resolver resolver, Dial dial, Options opts);

  Result<Bytes> roundtrip(BytesView request) override;

  /// Pipelines through the live connection when every request in the
  /// batch is resend-safe; otherwise (or after any in-batch failure)
  /// degrades to the sequential per-request failover path.
  Result<std::vector<Bytes>> roundtrip_batch(
      const std::vector<Bytes>& requests) override;

  /// Drops the current connection (next roundtrip re-resolves + redials).
  void disconnect();

  std::uint64_t dials() const;
  std::uint64_t failovers() const;  // endpoint rotations
  /// Index into the resolver's list the next dial will try.
  std::size_t endpoint_cursor() const;

 private:
  bool transport_error(Errc c) const {
    return c == Errc::kTimeout || c == Errc::kConnReset ||
           c == Errc::kIoError;
  }
  int backoff_ms(int attempt);
  Result<Bytes> roundtrip_locked(BytesView request);
  /// Dials the cursor's endpoint (resolving first); advances the cursor
  /// on failure so the next attempt tries the other node.
  Status connect_locked();
  void rotate_locked(const char* why, std::uint64_t rid);

  Resolver resolver_;
  Dial dial_;
  Options opts_;
  mutable std::mutex mu_;
  std::unique_ptr<RpcChannel> channel_;
  std::size_t cursor_ = 0;
  std::uint64_t rng_state_;
  std::uint64_t dials_ = 0;
  std::uint64_t failovers_ = 0;
};

/// True when `response` is an ErrorMsg frame carrying kNotPrimary (the
/// re-route trigger; exposed for tests and the failover tooling).
bool is_not_primary_frame(BytesView response);

/// Resolves a hostname to a numeric IPv4 address via getaddrinfo.
/// Numeric addresses pass through untouched.
Result<std::string> resolve_ipv4(const std::string& host);

/// Dial for real sockets: re-resolves ep.host on every call, then
/// connects with TcpChannel.
FailoverChannel::Dial tcp_endpoint_dial(TcpChannel::Options opts = {});

/// Resolver over a fixed list (the common two-node deployment).
FailoverChannel::Resolver static_endpoints(std::vector<Endpoint> eps);

}  // namespace fgad::net
