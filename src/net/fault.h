// Fault-injecting RpcChannel decorator.
//
// Sits behind the same Transport seam as the real channels so the entire
// client<->server protocol suite can run under injected network faults in
// CI: dropped requests/responses (surface as kTimeout, like a stalled
// peer), mid-frame disconnects (kConnReset; the channel then stays dead
// until reset(), modelling a broken TCP connection that must be redialed),
// truncated and bit-flipped response frames (exercise every decoder's
// malformed-input path), and added latency. All randomness is a seeded
// deterministic stream, so failures reproduce from the test seed.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>

#include "net/transport.h"

namespace fgad::net {

class FaultInjectingChannel final : public RpcChannel {
 public:
  struct Options {
    // Independent per-roundtrip fault probabilities in [0, 1]. At most one
    // fault fires per roundtrip (drawn in the order listed).
    double drop_request = 0;       // request never reaches the server
    double disconnect = 0;         // connection dies mid-frame
    double drop_response = 0;      // server executed, response lost
    double truncate_response = 0;  // response frame cut short
    double bitflip_response = 0;   // one bit of the response flipped
    double delay = 0;              // response delayed by delay_ms
    int delay_ms = 5;
    std::uint64_t seed = 1;
  };

  struct Counters {
    std::uint64_t rpcs = 0;
    std::uint64_t dropped_requests = 0;
    std::uint64_t disconnects = 0;
    std::uint64_t dropped_responses = 0;
    std::uint64_t truncated = 0;
    std::uint64_t bitflipped = 0;
    std::uint64_t delayed = 0;
    std::uint64_t total_faults() const {
      return dropped_requests + disconnects + dropped_responses + truncated +
             bitflipped;
    }
  };

  FaultInjectingChannel(RpcChannel& inner, Options opts)
      : inner_(&inner), opts_(opts), rng_state_(opts.seed | 1) {}

  /// Owning variant: takes the inner channel's lifetime along (so a Dialer
  /// can wrap each freshly dialed connection in a fault layer).
  FaultInjectingChannel(std::unique_ptr<RpcChannel> inner, Options opts)
      : owned_(std::move(inner)),
        inner_(owned_.get()),
        opts_(opts),
        rng_state_(opts.seed | 1) {}

  Result<Bytes> roundtrip(BytesView request) override;

  /// True once a disconnect fault has killed the "connection"; every
  /// subsequent roundtrip fails with kConnReset until reset().
  bool dead() const;

  /// Revives the channel — the fault-model equivalent of redialing.
  void reset();

  Counters counters() const;

 private:
  double next_unit();  // uniform in [0, 1)

  std::unique_ptr<RpcChannel> owned_;  // null when wrapping by reference
  RpcChannel* inner_;
  Options opts_;
  mutable std::mutex mu_;
  std::uint64_t rng_state_;
  bool dead_ = false;
  Counters counters_;
};

}  // namespace fgad::net
