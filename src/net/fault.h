// Fault-injecting RpcChannel decorator.
//
// Sits behind the same Transport seam as the real channels so the entire
// client<->server protocol suite can run under injected network faults in
// CI: dropped requests/responses (surface as kTimeout, like a stalled
// peer), mid-frame disconnects (kConnReset; the channel then stays dead
// until reset(), modelling a broken TCP connection that must be redialed),
// truncated and bit-flipped response frames (exercise every decoder's
// malformed-input path), added latency, one-way partitions (requests or
// responses silently blackholed — the replication failover suite's bread
// and butter), and a reorder window that serves a stale earlier response
// in place of the current one. All randomness is a seeded deterministic
// stream, so failures reproduce from the test seed; the partition is also
// drivable statefully (partition()/heal()) for scripted failover tests.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>

#include "net/transport.h"

namespace fgad::net {

class FaultInjectingChannel final : public RpcChannel {
 public:
  /// One-way partition direction (the stateful partition()/heal() API).
  enum class Partition : std::uint8_t {
    kNone = 0,
    kToServer = 1,    // requests blackholed; server never executes
    kFromServer = 2,  // server EXECUTES; responses blackholed
  };

  struct Options {
    // Independent per-roundtrip fault probabilities in [0, 1]. At most one
    // fault fires per roundtrip (drawn in the order listed).
    double drop_request = 0;       // request never reaches the server
    double disconnect = 0;         // connection dies mid-frame
    double drop_response = 0;      // server executed, response lost
    double truncate_response = 0;  // response frame cut short
    double bitflip_response = 0;   // one bit of the response flipped
    double delay = 0;              // response delayed by delay_ms
    int delay_ms = 5;
    // One-shot probabilistic flavors of the one-way partition (the
    // stateful partition() below persists until heal() instead).
    double partition_to_server = 0;    // like drop_request, stable code 6
    double partition_from_server = 0;  // like drop_response, stable code 7
    // Response reordering: the fired roundtrip's response is parked and a
    // previously parked (stale) response is returned in its place — the
    // client's rid check must catch the mismatch. With nothing parked yet
    // the response is simply late past the deadline (kTimeout). At most
    // reorder_window responses are parked.
    double reorder = 0;
    std::size_t reorder_window = 2;
    std::uint64_t seed = 1;
  };

  struct Counters {
    std::uint64_t rpcs = 0;
    std::uint64_t dropped_requests = 0;
    std::uint64_t disconnects = 0;
    std::uint64_t dropped_responses = 0;
    std::uint64_t truncated = 0;
    std::uint64_t bitflipped = 0;
    std::uint64_t delayed = 0;
    std::uint64_t partitioned_to_server = 0;
    std::uint64_t partitioned_from_server = 0;
    std::uint64_t reordered = 0;
    std::uint64_t total_faults() const {
      return dropped_requests + disconnects + dropped_responses + truncated +
             bitflipped + partitioned_to_server + partitioned_from_server +
             reordered;
    }
  };

  FaultInjectingChannel(RpcChannel& inner, Options opts)
      : inner_(&inner), opts_(opts), rng_state_(opts.seed | 1) {}

  /// Owning variant: takes the inner channel's lifetime along (so a Dialer
  /// can wrap each freshly dialed connection in a fault layer).
  FaultInjectingChannel(std::unique_ptr<RpcChannel> inner, Options opts)
      : owned_(std::move(inner)),
        inner_(owned_.get()),
        opts_(opts),
        rng_state_(opts.seed | 1) {}

  Result<Bytes> roundtrip(BytesView request) override;

  /// True once a disconnect fault has killed the "connection"; every
  /// subsequent roundtrip fails with kConnReset until reset().
  bool dead() const;

  /// Revives the channel — the fault-model equivalent of redialing.
  /// Also heals a stateful partition.
  void reset();

  /// Installs a persistent one-way partition (until heal()/reset()).
  /// Unlike a disconnect the link *looks* alive: every roundtrip times
  /// out instead of failing fast, and in the kFromServer direction the
  /// server still executes everything — the exact indeterminate-commit
  /// ambiguity the tagged-resend machinery exists for.
  void partition(Partition dir);
  void heal();
  Partition partitioned() const;

  Counters counters() const;

 private:
  double next_unit();  // uniform in [0, 1)

  std::unique_ptr<RpcChannel> owned_;  // null when wrapping by reference
  RpcChannel* inner_;
  Options opts_;
  mutable std::mutex mu_;
  std::uint64_t rng_state_;
  bool dead_ = false;
  Partition partition_ = Partition::kNone;
  std::deque<Bytes> held_;  // reorder window: parked responses
  Counters counters_;
};

}  // namespace fgad::net
