#include "net/failover.h"

#include <netdb.h>

#include <algorithm>
#include <arpa/inet.h>
#include <chrono>
#include <cstring>
#include <thread>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "proto/messages.h"

namespace fgad::net {

namespace {

obs::Counter& failover_counter() {
  static obs::Counter& c =
      obs::Registry::instance().counter("fgad_failover_total");
  return c;
}

obs::Counter& failover_dials_counter() {
  static obs::Counter& c =
      obs::Registry::instance().counter("fgad_failover_dials_total");
  return c;
}

std::uint64_t frame_rid(BytesView request) {
  const auto tag = proto::split_tagged(request);
  return tag ? tag->first : 0;
}

}  // namespace

bool is_not_primary_frame(BytesView response) {
  auto env = proto::open_message(response);
  if (!env || env.value().type != proto::MsgType::kError) {
    return false;
  }
  proto::Reader r(env.value().payload);
  auto err = proto::ErrorMsg::from(r);
  return err && err.value().code == Errc::kNotPrimary;
}

Result<std::string> resolve_ipv4(const std::string& host) {
  // Numeric addresses short-circuit: no resolver round trip, and tests
  // without name service keep working.
  in_addr probe{};
  if (::inet_pton(AF_INET, host.c_str(), &probe) == 1) {
    return host;
  }
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const int rc = ::getaddrinfo(host.c_str(), nullptr, &hints, &res);
  if (rc != 0 || res == nullptr) {
    return Error(Errc::kIoError,
                 "resolve " + host + ": " + ::gai_strerror(rc));
  }
  char buf[INET_ADDRSTRLEN] = {0};
  const auto* sin = reinterpret_cast<const sockaddr_in*>(res->ai_addr);
  ::inet_ntop(AF_INET, &sin->sin_addr, buf, sizeof(buf));
  ::freeaddrinfo(res);
  return std::string(buf);
}

FailoverChannel::Dial tcp_endpoint_dial(TcpChannel::Options opts) {
  return [opts](const Endpoint& ep) -> Result<std::unique_ptr<RpcChannel>> {
    auto addr = resolve_ipv4(ep.host);  // per-dial: never cached
    if (!addr) {
      return addr.error();
    }
    auto ch = TcpChannel::connect(addr.value(), ep.port, opts);
    if (!ch) {
      return ch.error();
    }
    return std::unique_ptr<RpcChannel>(std::move(ch).value());
  };
}

FailoverChannel::Resolver static_endpoints(std::vector<Endpoint> eps) {
  return [eps]() -> Result<std::vector<Endpoint>> { return eps; };
}

FailoverChannel::FailoverChannel(Resolver resolver, Dial dial, Options opts)
    : resolver_(std::move(resolver)),
      dial_(std::move(dial)),
      opts_(opts),
      rng_state_(opts.seed | 1) {}

int FailoverChannel::backoff_ms(int attempt) {
  long long ms = opts_.base_backoff_ms;
  for (int i = 0; i < attempt && ms < opts_.max_backoff_ms; ++i) {
    ms *= 2;
  }
  ms = std::min<long long>(ms, opts_.max_backoff_ms);
  rng_state_ += 0x9e3779b97f4a7c15ULL;  // splitmix64 jitter draw
  std::uint64_t z = rng_state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  const double unit = static_cast<double>(z >> 11) / 9007199254740992.0;
  const double factor = 1.0 + opts_.jitter * (2.0 * unit - 1.0);
  return static_cast<int>(std::max(0.0, static_cast<double>(ms) * factor));
}

void FailoverChannel::rotate_locked(const char* why, std::uint64_t rid) {
  channel_.reset();
  ++cursor_;
  ++failovers_;
  failover_counter().inc();
  obs::FlightRecorder::instance().record(obs::FrEvent::kRetryDial, rid,
                                         cursor_);
  // Per-cause breadcrumb (fgad_failover_not_primary_total / _transport_
  // total); looked up by name each time, the registry dedups.
  obs::Registry::instance()
      .counter(std::string("fgad_failover_") + why + "_total")
      .inc();
}

Status FailoverChannel::connect_locked() {
  auto eps = resolver_();  // EVERY dial re-resolves (see header)
  if (!eps) {
    return eps.status();
  }
  if (eps.value().empty()) {
    return Status(Errc::kInvalidArgument, "failover: resolver returned no "
                                          "endpoints");
  }
  const Endpoint& ep = eps.value()[cursor_ % eps.value().size()];
  ++dials_;
  failover_dials_counter().inc();
  auto ch = dial_(ep);
  if (!ch) {
    ++cursor_;  // a dead endpoint should not eat every attempt
    return ch.status();
  }
  channel_ = std::move(ch).value();
  return Status::ok();
}

Result<Bytes> FailoverChannel::roundtrip(BytesView request) {
  std::lock_guard<std::mutex> lock(mu_);
  return roundtrip_locked(request);
}

Result<Bytes> FailoverChannel::roundtrip_locked(BytesView request) {
  const bool may_resend = opts_.retryable && opts_.retryable(request);
  const std::uint64_t rid = frame_rid(request);
  Error last(Errc::kIoError, "failover: no attempt made");
  bool sent_once = false;
  for (int attempt = 0; attempt < std::max(1, opts_.max_attempts); ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(backoff_ms(attempt - 1)));
    }
    if (!channel_) {
      if (auto st = connect_locked(); !st) {
        last = st.error();
        continue;  // dialing sends nothing; always retryable
      }
    }
    // Transport-level resend discipline matches RetryChannel; the
    // kNotPrimary rotation below is exempt from it (definitively not
    // executed — see header).
    if (sent_once && !may_resend) {
      break;
    }
    sent_once = true;
    Result<Bytes> resp = channel_->roundtrip(request);
    if (resp) {
      if (is_not_primary_frame(resp.value())) {
        rotate_locked("not_primary", rid);
        last = Error(Errc::kNotPrimary, "failover: endpoint is not primary");
        sent_once = false;  // not executed: the resend ban does not apply
        continue;
      }
      return resp;
    }
    if (!transport_error(resp.error().code)) {
      return resp;  // protocol-level failure: the connection still works
    }
    last = resp.error();
    rotate_locked("transport", rid);
    if (!may_resend) {
      return resp;
    }
  }
  return Error(Errc::kRetryExhausted,
               "failover: gave up after " +
                   std::to_string(std::max(1, opts_.max_attempts)) +
                   " attempts (last: " + last.to_string() + ")");
}

Result<std::vector<Bytes>> FailoverChannel::roundtrip_batch(
    const std::vector<Bytes>& requests) {
  std::lock_guard<std::mutex> lock(mu_);
  const bool all_resendable =
      opts_.retryable &&
      std::all_of(requests.begin(), requests.end(),
                  [&](const Bytes& r) { return opts_.retryable(r); });
  if (all_resendable) {
    // Fast path: pipeline the whole batch on the live connection. Any
    // failure — transport or a mid-batch kNotPrimary — falls through to
    // the per-request path, which is safe to replay precisely because
    // every request in the batch passed the predicate.
    if (channel_ || connect_locked()) {
      if (channel_) {
        auto resps = channel_->roundtrip_batch(requests);
        if (resps) {
          const bool rerouted = std::any_of(
              resps.value().begin(), resps.value().end(),
              [](const Bytes& r) { return is_not_primary_frame(r); });
          if (!rerouted) {
            return resps;
          }
          rotate_locked("not_primary", 0);
        } else if (transport_error(resps.error().code)) {
          rotate_locked("transport", 0);
        } else {
          return resps.error();
        }
      }
    }
  }
  std::vector<Bytes> out;
  out.reserve(requests.size());
  for (const Bytes& r : requests) {
    auto resp = roundtrip_locked(r);
    if (!resp) {
      return resp.error();
    }
    out.push_back(std::move(resp).value());
  }
  return out;
}

void FailoverChannel::disconnect() {
  std::lock_guard<std::mutex> lock(mu_);
  channel_.reset();
}

std::uint64_t FailoverChannel::dials() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dials_;
}

std::uint64_t FailoverChannel::failovers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return failovers_;
}

std::size_t FailoverChannel::endpoint_cursor() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cursor_;
}

}  // namespace fgad::net
