#include "crypto/prf.h"

#include <openssl/evp.h>
#include <openssl/hmac.h>

#include <stdexcept>

namespace fgad::crypto {

struct Prf::Impl {
  HashAlg alg;
  std::size_t out_size;
  Bytes key;
  const EVP_MD* md = nullptr;
};

Prf::Prf(HashAlg alg, BytesView key) : impl_(std::make_unique<Impl>()) {
  impl_->alg = alg;
  impl_->out_size = digest_size(alg);
  impl_->key.assign(key.begin(), key.end());
  impl_->md = (alg == HashAlg::kSha1) ? EVP_sha1() : EVP_sha256();
}

Prf::~Prf() {
  if (impl_ && !impl_->key.empty()) {
    OPENSSL_cleanse(impl_->key.data(), impl_->key.size());
  }
}

Prf::Prf(Prf&&) noexcept = default;
Prf& Prf::operator=(Prf&&) noexcept = default;

Md Prf::derive(std::uint64_t index) const {
  std::uint8_t label[8];
  for (int i = 0; i < 8; ++i) {
    label[i] = static_cast<std::uint8_t>(index >> (8 * i));
  }
  return derive_bytes(label);
}

Md Prf::derive_bytes(BytesView label) const {
  unsigned char out[EVP_MAX_MD_SIZE];
  unsigned int len = 0;
  if (HMAC(impl_->md, impl_->key.data(), static_cast<int>(impl_->key.size()),
           label.data(), label.size(), out, &len) == nullptr) {
    throw std::runtime_error("Prf: HMAC failed");
  }
  if (len < impl_->out_size) {
    throw std::runtime_error("Prf: unexpected HMAC size");
  }
  return Md(BytesView(out, impl_->out_size));
}

}  // namespace fgad::crypto
