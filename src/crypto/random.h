// Random sources for key / modulator generation.
//
// RandomSource is the seam between "real" cryptographic randomness
// (SystemRandom, backed by OpenSSL RAND_bytes) and deterministic randomness
// for reproducible tests and large benchmark setups (DeterministicRandom,
// backed by xoshiro256**). The scheme's security argument requires fresh
// uniform modulators; the algorithms themselves only require distinctness,
// which both sources deliver with overwhelming probability at 160 bits.
#pragma once

#include <cstdint>

#include "common/bytes.h"
#include "common/rng.h"
#include "crypto/digest.h"

namespace fgad::crypto {

class RandomSource {
 public:
  virtual ~RandomSource() = default;

  virtual void fill(std::span<std::uint8_t> out) = 0;

  /// Fresh random value of width n bytes.
  Md random_md(std::size_t n);

  /// Fresh random 64-bit value.
  std::uint64_t random_u64();
};

/// OpenSSL-backed CSPRNG.
class SystemRandom final : public RandomSource {
 public:
  void fill(std::span<std::uint8_t> out) override;
};

/// Deterministic source for tests/benches; NOT cryptographically secure.
class DeterministicRandom final : public RandomSource {
 public:
  explicit DeterministicRandom(std::uint64_t seed) : rng_(seed) {}
  void fill(std::span<std::uint8_t> out) override { rng_.fill(out); }

 private:
  Xoshiro256 rng_;
};

}  // namespace fgad::crypto
