// Pseudo-random function PRF(K, i) used by the master-key baseline
// (Section III-A of the paper): each data item's key is derived from the
// single master key and the item's index. Implemented as HMAC over the
// little-endian index.
#pragma once

#include <memory>

#include "common/bytes.h"
#include "crypto/digest.h"

namespace fgad::crypto {

class Prf {
 public:
  /// `key` is the master key; outputs have the digest width of `alg`.
  Prf(HashAlg alg, BytesView key);
  ~Prf();

  Prf(const Prf&) = delete;
  Prf& operator=(const Prf&) = delete;
  Prf(Prf&&) noexcept;
  Prf& operator=(Prf&&) noexcept;

  /// PRF(K, index).
  Md derive(std::uint64_t index) const;

  /// PRF(K, label) for arbitrary byte labels.
  Md derive_bytes(BytesView label) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace fgad::crypto
