// AES-128-CBC block cipher wrapper (OpenSSL EVP) used for item encryption.
//
// The paper encrypts each data item with AES under a 128-bit key taken from
// the output of the key modulation function. Contexts are reused so
// per-item overhead stays small in the large benchmarks.
#pragma once

#include <memory>

#include "common/bytes.h"
#include "common/result.h"
#include "crypto/digest.h"

namespace fgad::crypto {

inline constexpr std::size_t kAesKeySize = 16;
inline constexpr std::size_t kAesBlockSize = 16;

/// Derives the AES-128 key from a chain output (first 16 bytes), as the
/// paper does ("128-bit keys, taken from the output of the key modulation
/// function").
std::array<std::uint8_t, kAesKeySize> aes_key_from(const Md& chain_output);

class AesCbc {
 public:
  AesCbc();
  ~AesCbc();

  AesCbc(const AesCbc&) = delete;
  AesCbc& operator=(const AesCbc&) = delete;
  AesCbc(AesCbc&&) noexcept;
  AesCbc& operator=(AesCbc&&) noexcept;

  /// Encrypts with PKCS#7 padding. `iv` must be kAesBlockSize long.
  Bytes encrypt(std::span<const std::uint8_t, kAesKeySize> key, BytesView iv,
                BytesView plaintext) const;

  /// Decrypts; fails (without throwing) on bad padding.
  Result<Bytes> decrypt(std::span<const std::uint8_t, kAesKeySize> key,
                        BytesView iv, BytesView ciphertext) const;

  /// Ciphertext size for a plaintext of n bytes (PKCS#7: next multiple of
  /// the block size, always at least one block of padding).
  static std::size_t ciphertext_size(std::size_t n) {
    return (n / kAesBlockSize + 1) * kAesBlockSize;
  }

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace fgad::crypto
