#include "crypto/aes.h"

#include <openssl/evp.h>

#include <cstring>
#include <stdexcept>

namespace fgad::crypto {

std::array<std::uint8_t, kAesKeySize> aes_key_from(const Md& chain_output) {
  if (chain_output.size() < kAesKeySize) {
    throw std::invalid_argument("aes_key_from: chain output too short");
  }
  std::array<std::uint8_t, kAesKeySize> key;
  std::memcpy(key.data(), chain_output.data(), kAesKeySize);
  return key;
}

struct AesCbc::Impl {
  EVP_CIPHER_CTX* ctx = nullptr;

  ~Impl() {
    if (ctx != nullptr) {
      EVP_CIPHER_CTX_free(ctx);
    }
  }
};

AesCbc::AesCbc() : impl_(std::make_unique<Impl>()) {
  impl_->ctx = EVP_CIPHER_CTX_new();
  if (impl_->ctx == nullptr) {
    throw std::runtime_error("AesCbc: EVP_CIPHER_CTX_new failed");
  }
}

AesCbc::~AesCbc() = default;
AesCbc::AesCbc(AesCbc&&) noexcept = default;
AesCbc& AesCbc::operator=(AesCbc&&) noexcept = default;

Bytes AesCbc::encrypt(std::span<const std::uint8_t, kAesKeySize> key,
                      BytesView iv, BytesView plaintext) const {
  if (iv.size() != kAesBlockSize) {
    throw std::invalid_argument("AesCbc::encrypt: bad IV size");
  }
  EVP_CIPHER_CTX* ctx = impl_->ctx;
  if (EVP_EncryptInit_ex(ctx, EVP_aes_128_cbc(), nullptr, key.data(),
                         iv.data()) != 1) {
    throw std::runtime_error("AesCbc: EncryptInit failed");
  }
  Bytes out(ciphertext_size(plaintext.size()));
  int len1 = 0;
  if (EVP_EncryptUpdate(ctx, out.data(), &len1, plaintext.data(),
                        static_cast<int>(plaintext.size())) != 1) {
    throw std::runtime_error("AesCbc: EncryptUpdate failed");
  }
  int len2 = 0;
  if (EVP_EncryptFinal_ex(ctx, out.data() + len1, &len2) != 1) {
    throw std::runtime_error("AesCbc: EncryptFinal failed");
  }
  out.resize(static_cast<std::size_t>(len1 + len2));
  return out;
}

Result<Bytes> AesCbc::decrypt(std::span<const std::uint8_t, kAesKeySize> key,
                              BytesView iv, BytesView ciphertext) const {
  if (iv.size() != kAesBlockSize) {
    return Error(Errc::kInvalidArgument, "AesCbc::decrypt: bad IV size");
  }
  if (ciphertext.empty() || ciphertext.size() % kAesBlockSize != 0) {
    return Error(Errc::kDecodeError, "AesCbc::decrypt: bad ciphertext size");
  }
  EVP_CIPHER_CTX* ctx = impl_->ctx;
  if (EVP_DecryptInit_ex(ctx, EVP_aes_128_cbc(), nullptr, key.data(),
                         iv.data()) != 1) {
    return Error(Errc::kIoError, "AesCbc: DecryptInit failed");
  }
  Bytes out(ciphertext.size());
  int len1 = 0;
  if (EVP_DecryptUpdate(ctx, out.data(), &len1, ciphertext.data(),
                        static_cast<int>(ciphertext.size())) != 1) {
    return Error(Errc::kDecodeError, "AesCbc: DecryptUpdate failed");
  }
  int len2 = 0;
  if (EVP_DecryptFinal_ex(ctx, out.data() + len1, &len2) != 1) {
    // Wrong key or corrupted ciphertext: invalid padding.
    return Error(Errc::kIntegrityMismatch, "AesCbc: bad padding");
  }
  out.resize(static_cast<std::size_t>(len1 + len2));
  return out;
}

}  // namespace fgad::crypto
