#include "crypto/hasher.h"

// The modulated hash chain performs tens of millions of hashes over <64-byte
// inputs; the EVP layer costs ~400 ns per call in provider lookups alone.
// We use the one-shot low-level digests for the hot path (they are
// deprecated in OpenSSL 3.0 but stable, and exactly what a 2014-era
// implementation used).
#define OPENSSL_SUPPRESS_DEPRECATED 1
#include <openssl/evp.h>
#include <openssl/sha.h>

#include <stdexcept>

namespace fgad::crypto {

namespace {
const EVP_MD* evp_md(HashAlg alg) {
  switch (alg) {
    case HashAlg::kSha1:
      return EVP_sha1();
    case HashAlg::kSha256:
      return EVP_sha256();
  }
  throw std::invalid_argument("evp_md: unknown hash algorithm");
}
}  // namespace

struct Hasher::Impl {
  EVP_MD_CTX* ctx = nullptr;
  const EVP_MD* md = nullptr;

  ~Impl() {
    if (ctx != nullptr) {
      EVP_MD_CTX_free(ctx);
    }
  }
};

Hasher::Hasher(HashAlg alg)
    : alg_(alg), size_(digest_size(alg)), impl_(std::make_unique<Impl>()) {
  impl_->md = evp_md(alg);
  impl_->ctx = EVP_MD_CTX_new();
  if (impl_->ctx == nullptr) {
    throw std::runtime_error("Hasher: EVP_MD_CTX_new failed");
  }
}

Hasher::~Hasher() = default;
Hasher::Hasher(Hasher&&) noexcept = default;
Hasher& Hasher::operator=(Hasher&&) noexcept = default;

Md Hasher::hash(BytesView data) const {
  return hash2(data, BytesView());
}

Md Hasher::hash2(BytesView a, BytesView b) const {
  // Fast path: low-level contexts, no allocation, no provider lookup.
  if (alg_ == HashAlg::kSha1) {
    SHA_CTX c;
    SHA1_Init(&c);
    if (!a.empty()) SHA1_Update(&c, a.data(), a.size());
    if (!b.empty()) SHA1_Update(&c, b.data(), b.size());
    Md out = Md::zero(size_);
    SHA1_Final(out.data(), &c);
    return out;
  }
  if (alg_ == HashAlg::kSha256) {
    SHA256_CTX c;
    SHA256_Init(&c);
    if (!a.empty()) SHA256_Update(&c, a.data(), a.size());
    if (!b.empty()) SHA256_Update(&c, b.data(), b.size());
    Md out = Md::zero(size_);
    SHA256_Final(out.data(), &c);
    return out;
  }
  EVP_MD_CTX* ctx = impl_->ctx;
  if (EVP_DigestInit_ex(ctx, impl_->md, nullptr) != 1) {
    throw std::runtime_error("Hasher: DigestInit failed");
  }
  if (!a.empty() && EVP_DigestUpdate(ctx, a.data(), a.size()) != 1) {
    throw std::runtime_error("Hasher: DigestUpdate failed");
  }
  if (!b.empty() && EVP_DigestUpdate(ctx, b.data(), b.size()) != 1) {
    throw std::runtime_error("Hasher: DigestUpdate failed");
  }
  Md out = Md::zero(size_);
  unsigned int len = 0;
  if (EVP_DigestFinal_ex(ctx, out.data(), &len) != 1 || len != size_) {
    throw std::runtime_error("Hasher: DigestFinal failed");
  }
  return out;
}

Md hash_oneshot(HashAlg alg, BytesView data) {
  return Hasher(alg).hash(data);
}

}  // namespace fgad::crypto
