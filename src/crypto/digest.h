// Digest / modulator value type.
//
// The paper's modulated hash chain works over fixed-width values: the master
// key K, every modulator x_i, and every intermediate chain value share the
// hash function's digest width (160 bits for SHA-1 in the paper's
// implementation). Md is that value type: a small fixed-capacity buffer
// whose runtime size equals the digest size of the configured hash.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <string>

#include "common/bytes.h"

namespace fgad::crypto {

enum class HashAlg : std::uint8_t {
  kSha1 = 1,    // paper default: 160-bit modulators
  kSha256 = 2,  // ablation variant: 256-bit modulators
};

/// Digest size in bytes for a hash algorithm.
std::size_t digest_size(HashAlg alg);

/// Name for reports ("SHA-1", "SHA-256").
const char* hash_alg_name(HashAlg alg);

/// Fixed-capacity digest/modulator value. Value-semantic, trivially
/// copyable; the size is set at construction and never changes.
class Md {
 public:
  static constexpr std::size_t kCapacity = 32;

  /// Empty (size 0) value; used only as a "not set" placeholder.
  constexpr Md() noexcept : b_{}, size_(0) {}

  /// Copies `bytes` (must be <= kCapacity long).
  explicit Md(BytesView bytes);

  /// All-zero value of width n.
  static Md zero(std::size_t n);

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  const std::uint8_t* data() const noexcept { return b_.data(); }
  std::uint8_t* data() noexcept { return b_.data(); }
  BytesView bytes() const noexcept { return BytesView(b_.data(), size_); }
  std::span<std::uint8_t> mutable_bytes() noexcept {
    return std::span<std::uint8_t>(b_.data(), size_);
  }

  /// XOR with another value of the same size (throws on mismatch).
  Md& operator^=(const Md& other);
  friend Md operator^(Md a, const Md& b) {
    a ^= b;
    return a;
  }

  friend bool operator==(const Md& a, const Md& b) noexcept {
    return a.size_ == b.size_ && a.b_ == b.b_;
  }
  friend bool operator!=(const Md& a, const Md& b) noexcept {
    return !(a == b);
  }
  /// Lexicographic order (for ordered containers / canonical sorting).
  friend bool operator<(const Md& a, const Md& b) noexcept {
    if (a.size_ != b.size_) return a.size_ < b.size_;
    return a.b_ < b.b_;
  }

  /// Securely wipes the value in place.
  void cleanse() noexcept;

  std::string hex() const { return to_hex(bytes()); }

  /// Hash functor for unordered containers.
  struct Hasher {
    std::size_t operator()(const Md& m) const noexcept;
  };

 private:
  std::array<std::uint8_t, kCapacity> b_;  // zero-padded beyond size_
  std::uint8_t size_;
};

}  // namespace fgad::crypto
