#include "crypto/random.h"

#include <openssl/rand.h>

#include <stdexcept>

namespace fgad::crypto {

Md RandomSource::random_md(std::size_t n) {
  Md m = Md::zero(n);
  fill(m.mutable_bytes());
  return m;
}

std::uint64_t RandomSource::random_u64() {
  std::uint8_t buf[8];
  fill(buf);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(buf[i]) << (8 * i);
  }
  return v;
}

void SystemRandom::fill(std::span<std::uint8_t> out) {
  if (out.empty()) {
    return;
  }
  if (RAND_bytes(out.data(), static_cast<int>(out.size())) != 1) {
    throw std::runtime_error("SystemRandom: RAND_bytes failed");
  }
}

}  // namespace fgad::crypto
