// One-way hash wrapper (OpenSSL EVP) with context reuse.
//
// The modulated hash chain calls H millions of times during benchmarks, so
// Hasher keeps one EVP_MD_CTX alive and re-initializes it per message
// instead of allocating a context per call.
#pragma once

#include <memory>

#include "common/bytes.h"
#include "crypto/digest.h"

namespace fgad::crypto {

class Hasher {
 public:
  explicit Hasher(HashAlg alg);
  ~Hasher();

  Hasher(const Hasher&) = delete;
  Hasher& operator=(const Hasher&) = delete;
  Hasher(Hasher&&) noexcept;
  Hasher& operator=(Hasher&&) noexcept;

  HashAlg alg() const noexcept { return alg_; }
  std::size_t size() const noexcept { return size_; }

  /// H(data) as an Md of the digest width.
  Md hash(BytesView data) const;

  /// H(a || b) without concatenating the inputs.
  Md hash2(BytesView a, BytesView b) const;

 private:
  struct Impl;
  HashAlg alg_;
  std::size_t size_;
  std::unique_ptr<Impl> impl_;
};

/// Convenience one-shot hash.
Md hash_oneshot(HashAlg alg, BytesView data);

}  // namespace fgad::crypto
