#include "crypto/secure_buffer.h"

#include <openssl/crypto.h>

namespace fgad::crypto {

SecureBuffer& SecureBuffer::operator=(SecureBuffer&& other) noexcept {
  if (this != &other) {
    wipe();
    data_ = std::move(other.data_);
    other.data_.clear();
  }
  return *this;
}

void SecureBuffer::wipe() noexcept {
  if (!data_.empty()) {
    OPENSSL_cleanse(data_.data(), data_.size());
  }
  data_.clear();
  data_.shrink_to_fit();
}

}  // namespace fgad::crypto
