#include "crypto/digest.h"

#include <openssl/crypto.h>

#include <cstring>
#include <stdexcept>

namespace fgad::crypto {

std::size_t digest_size(HashAlg alg) {
  switch (alg) {
    case HashAlg::kSha1:
      return 20;
    case HashAlg::kSha256:
      return 32;
  }
  throw std::invalid_argument("digest_size: unknown hash algorithm");
}

const char* hash_alg_name(HashAlg alg) {
  switch (alg) {
    case HashAlg::kSha1:
      return "SHA-1";
    case HashAlg::kSha256:
      return "SHA-256";
  }
  return "?";
}

Md::Md(BytesView bytes) : b_{}, size_(0) {
  if (bytes.size() > kCapacity) {
    throw std::invalid_argument("Md: value wider than capacity");
  }
  std::memcpy(b_.data(), bytes.data(), bytes.size());
  size_ = static_cast<std::uint8_t>(bytes.size());
}

Md Md::zero(std::size_t n) {
  if (n > kCapacity) {
    throw std::invalid_argument("Md::zero: width exceeds capacity");
  }
  Md m;
  m.size_ = static_cast<std::uint8_t>(n);
  return m;
}

Md& Md::operator^=(const Md& other) {
  if (size_ != other.size_) {
    throw std::invalid_argument("Md::operator^=: size mismatch");
  }
  for (std::size_t i = 0; i < size_; ++i) {
    b_[i] ^= other.b_[i];
  }
  return *this;
}

void Md::cleanse() noexcept {
  OPENSSL_cleanse(b_.data(), b_.size());
}

std::size_t Md::Hasher::operator()(const Md& m) const noexcept {
  // FNV-1a over the whole (zero-padded) buffer plus the size byte. The
  // buffer past size_ is guaranteed zero, so equal values hash equal.
  std::size_t h = 1469598103934665603ull;
  for (std::uint8_t b : m.b_) {
    h = (h ^ b) * 1099511628211ull;
  }
  h = (h ^ m.size_) * 1099511628211ull;
  return h;
}

}  // namespace fgad::crypto
