// Zeroizing secret containers.
//
// Assured deletion hinges on the client *permanently* destroying retired
// master keys: the threat model lets the attacker image the client device
// after deletion time T, so stale key bytes in memory would break Theorem 2.
// MasterKey wraps a chain-width secret and guarantees OPENSSL_cleanse on
// destruction, move-out, and rotation.
#pragma once

#include <utility>

#include "common/bytes.h"
#include "crypto/digest.h"
#include "crypto/random.h"

namespace fgad::crypto {

/// Byte buffer that wipes its contents on destruction.
class SecureBuffer {
 public:
  SecureBuffer() = default;
  explicit SecureBuffer(Bytes data) : data_(std::move(data)) {}
  explicit SecureBuffer(std::size_t n) : data_(n, 0) {}
  ~SecureBuffer() { wipe(); }

  SecureBuffer(const SecureBuffer&) = delete;
  SecureBuffer& operator=(const SecureBuffer&) = delete;
  SecureBuffer(SecureBuffer&& other) noexcept { *this = std::move(other); }
  SecureBuffer& operator=(SecureBuffer&& other) noexcept;

  BytesView view() const noexcept { return data_; }
  std::span<std::uint8_t> mutable_view() noexcept { return data_; }
  std::size_t size() const noexcept { return data_.size(); }
  bool empty() const noexcept { return data_.empty(); }

  /// Securely erases the contents (buffer becomes empty).
  void wipe() noexcept;

 private:
  Bytes data_;
};

/// The client's master key K (or higher-level control key). Move-only and
/// self-wiping; `rotate` securely destroys the old value in place.
class MasterKey {
 public:
  MasterKey() = default;  // empty/"deleted" key
  explicit MasterKey(Md value) : v_(value) {}

  ~MasterKey() { v_.cleanse(); }

  MasterKey(const MasterKey&) = delete;
  MasterKey& operator=(const MasterKey&) = delete;
  MasterKey(MasterKey&& other) noexcept : v_(other.v_) { other.erase(); }
  MasterKey& operator=(MasterKey&& other) noexcept {
    if (this != &other) {
      v_.cleanse();
      v_ = other.v_;
      other.erase();
    }
    return *this;
  }

  /// Generates a fresh key of width n from `rnd`.
  static MasterKey generate(RandomSource& rnd, std::size_t n) {
    return MasterKey(rnd.random_md(n));
  }

  bool empty() const noexcept { return v_.empty(); }
  const Md& value() const noexcept { return v_; }

  /// Duplicates the secret (explicit, so copies are visible in code review).
  MasterKey clone() const { return MasterKey(v_); }

  /// Securely destroys the current value and installs a fresh one.
  void rotate(Md fresh) {
    v_.cleanse();
    v_ = fresh;
  }

  /// Securely destroys the key ("permanent deletion" in the paper).
  void erase() noexcept {
    v_.cleanse();
    v_ = Md();
  }

 private:
  Md v_;
};

}  // namespace fgad::crypto
