// Section V, local key proxy: "If a client has many users sharing the same
// file system ... the client may designate a local proxy server to manage
// these keys. When a user wants to operate on data, its request is
// redirected to the proxy, which will act on the user's behalf to access or
// update the data before forwarding the data to the user."
//
// KeyProxy wraps a FileSystemClient (which holds the control key and talks
// to the cloud) behind the same framed request/response protocol the rest
// of the system uses, so users can sit on any RpcChannel — in-process,
// pipe, or TCP inside the trusted perimeter. ProxyUser is the user-side
// stub. Users never see a key; the proxy never stores user data.
#pragma once

#include "fskeys/meta.h"
#include "net/transport.h"

namespace fgad::fskeys {

/// The proxy: owns no state beyond the wrapped FileSystemClient.
class KeyProxy {
 public:
  explicit KeyProxy(FileSystemClient& fs) : fs_(fs) {}

  /// Handles one framed user request; returns the framed response.
  Bytes handle(BytesView request);

 private:
  FileSystemClient& fs_;
};

/// User-side stub talking to a KeyProxy over an RpcChannel.
class ProxyUser {
 public:
  explicit ProxyUser(net::RpcChannel& channel) : channel_(channel) {}

  Status create_file(std::uint64_t file_id, std::span<const Bytes> items);
  Result<Bytes> access(std::uint64_t file_id, proto::ItemRef ref);
  Result<std::uint64_t> insert(std::uint64_t file_id, BytesView content);
  Status erase_item(std::uint64_t file_id, proto::ItemRef ref);
  Status modify(std::uint64_t file_id, std::uint64_t item_id,
                BytesView new_content);
  Status delete_file(std::uint64_t file_id);
  Result<std::size_t> file_count();

 private:
  Result<Bytes> call(BytesView frame, proto::MsgType expect);

  net::RpcChannel& channel_;
};

}  // namespace fgad::fskeys
