// Section V, grouped control keys: "the client may also divide the master
// keys of all files into groups based on the directory structure or file
// types, and use a separate control key and a corresponding meta modulation
// tree for each group."
//
// GroupedFileSystem manages one FileSystemClient (control key + meta tree)
// per group and routes file operations by file id. Deleting data in one
// group never touches another group's control key, which bounds the blast
// radius of a key rotation and lets groups live on different devices.
#pragma once

#include <map>
#include <memory>

#include "fskeys/meta.h"

namespace fgad::fskeys {

class GroupedFileSystem {
 public:
  explicit GroupedFileSystem(client::Client& client) : client_(client) {}

  /// Creates a group backed by meta file `meta_file_id` (a fresh control
  /// key and meta modulation tree).
  Status create_group(std::uint64_t group_id, std::uint64_t meta_file_id);

  std::size_t group_count() const { return groups_.size(); }
  bool has_group(std::uint64_t group_id) const {
    return groups_.count(group_id) != 0;
  }

  /// Direct access to a group's FileSystemClient (e.g. for rebuild_index).
  Result<FileSystemClient*> group(std::uint64_t group_id);

  // ---- file operations, routed by file id ---------------------------------

  Status create_file(std::uint64_t group_id, std::uint64_t file_id,
                     std::size_t n_items,
                     const std::function<Bytes(std::size_t)>& item_at);

  Result<Bytes> access(std::uint64_t file_id, proto::ItemRef ref);
  Result<std::uint64_t> insert(std::uint64_t file_id, BytesView content);
  Status erase_item(std::uint64_t file_id, proto::ItemRef ref);
  Status modify(std::uint64_t file_id, std::uint64_t item_id,
                BytesView new_content);
  Status delete_file(std::uint64_t file_id);

  /// The group a file belongs to.
  Result<std::uint64_t> group_of(std::uint64_t file_id) const;

 private:
  Result<FileSystemClient*> fs_of(std::uint64_t file_id);

  client::Client& client_;
  std::map<std::uint64_t, std::unique_ptr<FileSystemClient>> groups_;
  std::map<std::uint64_t, std::uint64_t> group_of_file_;
};

}  // namespace fgad::fskeys
