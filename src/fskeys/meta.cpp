#include "fskeys/meta.h"

namespace fgad::fskeys {

using client::Client;
using crypto::MasterKey;
using crypto::Md;

FileSystemClient::FileSystemClient(Client& client, std::uint64_t meta_file_id)
    : client_(client) {
  meta_.id = meta_file_id;
}

Status FileSystemClient::init() {
  auto fh = client_.outsource(meta_.id, 0,
                              [](std::size_t) { return Bytes{}; });
  if (!fh) {
    return fh.status();
  }
  meta_ = std::move(fh).value();
  return Status::ok();
}

Bytes FileSystemClient::encode_entry(std::uint64_t file_id, const Md& key) {
  proto::Writer w;
  w.u64(file_id);
  w.md(key);
  return std::move(w).take();
}

Result<std::pair<std::uint64_t, Md>> FileSystemClient::decode_entry(
    BytesView plaintext) {
  proto::Reader r(plaintext);
  const std::uint64_t file_id = r.u64();
  const Md key = r.md();
  if (auto st = r.finish(); !st) {
    return Error(Errc::kDecodeError, "meta entry: malformed");
  }
  return std::pair<std::uint64_t, Md>(file_id, key);
}

Status FileSystemClient::create_file(std::uint64_t file_id,
                                     std::span<const Bytes> items) {
  return create_file(file_id, items.size(),
                     [&](std::size_t i) { return items[i]; });
}

Status FileSystemClient::create_file(
    std::uint64_t file_id, std::size_t n_items,
    const std::function<Bytes(std::size_t)>& item_at) {
  if (meta_item_of_.count(file_id) != 0) {
    return Status(Errc::kInvalidArgument, "fs: file already exists");
  }
  auto fh = client_.outsource(file_id, n_items, item_at);
  if (!fh) {
    return fh.status();
  }
  auto meta_id =
      client_.insert(meta_, encode_entry(file_id, fh.value().key.value()));
  if (!meta_id) {
    return meta_id.status();
  }
  meta_item_of_.emplace(file_id, meta_id.value());
  // fh goes out of scope here; its MasterKey destructor wipes the local
  // copy — from now on the key lives only in the meta tree.
  return Status::ok();
}

Result<Client::FileHandle> FileSystemClient::open_file(std::uint64_t file_id) {
  const auto it = meta_item_of_.find(file_id);
  if (it == meta_item_of_.end()) {
    return Error(Errc::kNotFound, "fs: unknown file");
  }
  auto plaintext = client_.access(meta_, proto::ItemRef::id(it->second));
  if (!plaintext) {
    return plaintext.error();
  }
  auto entry = decode_entry(plaintext.value());
  // Wipe the plaintext buffer holding the key material.
  if (!plaintext.value().empty()) {
    crypto::SecureBuffer scrub(std::move(plaintext.value()));
  }
  if (!entry) {
    return entry.error();
  }
  if (entry.value().first != file_id) {
    return Error(Errc::kTamperDetected, "fs: meta entry binds another file");
  }
  Client::FileHandle fh;
  fh.id = file_id;
  fh.key = MasterKey(entry.value().second);
  entry.value().second.cleanse();
  return fh;
}

Result<Bytes> FileSystemClient::access(std::uint64_t file_id,
                                       proto::ItemRef ref) {
  auto fh = open_file(file_id);
  if (!fh) {
    return fh.error();
  }
  return client_.access(fh.value(), ref);
}

Status FileSystemClient::modify(std::uint64_t file_id, std::uint64_t item_id,
                                BytesView new_content) {
  auto fh = open_file(file_id);
  if (!fh) {
    return fh.status();
  }
  return client_.modify(fh.value(), item_id, new_content);
}

Result<std::uint64_t> FileSystemClient::insert(std::uint64_t file_id,
                                               BytesView content,
                                               std::uint64_t after_item_id) {
  auto fh = open_file(file_id);
  if (!fh) {
    return fh.error();
  }
  return client_.insert(fh.value(), content, after_item_id);
}

Status FileSystemClient::rotate_meta_entry(std::uint64_t file_id,
                                           const Md& key) {
  const auto it = meta_item_of_.find(file_id);
  if (it == meta_item_of_.end()) {
    return Status(Errc::kNotFound, "fs: unknown file");
  }
  // Assured deletion of the old entry: rotates the control key and makes
  // the old meta data key (hence the old master key) unrecoverable.
  if (auto st = client_.erase_item(meta_, proto::ItemRef::id(it->second));
      !st) {
    return st;
  }
  auto meta_id = client_.insert(meta_, encode_entry(file_id, key));
  if (!meta_id) {
    return meta_id.status();
  }
  it->second = meta_id.value();
  return Status::ok();
}

Status FileSystemClient::erase_item(std::uint64_t file_id,
                                    proto::ItemRef ref) {
  auto fh = open_file(file_id);
  if (!fh) {
    return fh.status();
  }
  // Step 1: fine-grained deletion in the file's own modulation tree; the
  // file's master key rotates to K_f'.
  if (auto st = client_.erase_item(fh.value(), ref); !st) {
    return st;
  }
  // Step 2: make the old K_f unrecoverable in the meta tree and bind K_f'.
  return rotate_meta_entry(file_id, fh.value().key.value());
}

Status FileSystemClient::delete_file(std::uint64_t file_id) {
  const auto it = meta_item_of_.find(file_id);
  if (it == meta_item_of_.end()) {
    return Status(Errc::kNotFound, "fs: unknown file");
  }
  // Assuredly delete the master key from the meta tree: the entire file
  // becomes unrecoverable even if the server keeps its ciphertexts.
  if (auto st = client_.erase_item(meta_, proto::ItemRef::id(it->second));
      !st) {
    return st;
  }
  meta_item_of_.erase(it);
  // Storage reclamation (best effort; not security relevant).
  Client::FileHandle fh;
  fh.id = file_id;
  return client_.drop_file(fh);
}

Status FileSystemClient::rebuild_index() {
  auto fetched = client_.fetch_all(meta_);
  if (!fetched) {
    return fetched.status();
  }
  meta_item_of_.clear();
  for (auto& [meta_id, plaintext] : fetched.value().items) {
    auto entry = decode_entry(plaintext);
    if (!entry) {
      return entry.status();
    }
    meta_item_of_[entry.value().first] = meta_id;
    entry.value().second.cleanse();
    crypto::SecureBuffer scrub(std::move(plaintext));
  }
  return Status::ok();
}

}  // namespace fgad::fskeys
