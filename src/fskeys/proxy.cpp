#include "fskeys/proxy.h"

namespace fgad::fskeys {

namespace proto = fgad::proto;
using proto::MsgType;

namespace {

Bytes error_frame(const Error& e) {
  proto::ErrorMsg msg;
  msg.code = e.code;
  msg.message = e.message;
  return msg.to_frame();
}

Bytes status_frame(const Status& st, MsgType ok_type) {
  return st ? proto::empty_frame(ok_type) : error_frame(st.error());
}

}  // namespace

Bytes KeyProxy::handle(BytesView request) {
  auto env = proto::open_message(request);
  if (!env) {
    return error_frame(env.error());
  }
  proto::Reader r(env.value().payload);

  switch (env.value().type) {
    case MsgType::kPxCreateFileReq: {
      const std::uint64_t file_id = r.u64();
      const std::uint64_t n = r.u64();
      if (!r.ok() || n > (1ull << 32)) {
        return error_frame(Error(Errc::kDecodeError, "proxy: bad item count"));
      }
      std::vector<Bytes> items;
      items.reserve(n);
      for (std::uint64_t i = 0; i < n; ++i) {
        items.push_back(r.bytes());
        if (!r.ok()) {
          return error_frame(Error(Errc::kDecodeError, "proxy: truncated"));
        }
      }
      return status_frame(fs_.create_file(file_id, items),
                          MsgType::kPxCreateFileResp);
    }

    case MsgType::kPxAccessReq: {
      const std::uint64_t file_id = r.u64();
      auto ref = proto::decode_item_ref(r);
      if (!ref || !r.finish()) {
        return error_frame(Error(Errc::kDecodeError, "proxy: bad access req"));
      }
      auto got = fs_.access(file_id, ref.value());
      if (!got) {
        return error_frame(got.error());
      }
      proto::Writer w;
      w.bytes(got.value());
      return proto::seal_message(MsgType::kPxAccessResp, w.data());
    }

    case MsgType::kPxInsertReq: {
      const std::uint64_t file_id = r.u64();
      const Bytes content = r.bytes();
      if (!r.finish()) {
        return error_frame(Error(Errc::kDecodeError, "proxy: bad insert req"));
      }
      auto id = fs_.insert(file_id, content);
      if (!id) {
        return error_frame(id.error());
      }
      proto::Writer w;
      w.u64(id.value());
      return proto::seal_message(MsgType::kPxInsertResp, w.data());
    }

    case MsgType::kPxEraseReq: {
      const std::uint64_t file_id = r.u64();
      auto ref = proto::decode_item_ref(r);
      if (!ref || !r.finish()) {
        return error_frame(Error(Errc::kDecodeError, "proxy: bad erase req"));
      }
      return status_frame(fs_.erase_item(file_id, ref.value()),
                          MsgType::kPxEraseResp);
    }

    case MsgType::kPxModifyReq: {
      const std::uint64_t file_id = r.u64();
      const std::uint64_t item_id = r.u64();
      const Bytes content = r.bytes();
      if (!r.finish()) {
        return error_frame(Error(Errc::kDecodeError, "proxy: bad modify req"));
      }
      return status_frame(fs_.modify(file_id, item_id, content),
                          MsgType::kPxModifyResp);
    }

    case MsgType::kPxDeleteFileReq: {
      const std::uint64_t file_id = r.u64();
      if (!r.finish()) {
        return error_frame(Error(Errc::kDecodeError, "proxy: bad delete req"));
      }
      return status_frame(fs_.delete_file(file_id),
                          MsgType::kPxDeleteFileResp);
    }

    case MsgType::kPxListFilesReq: {
      proto::Writer w;
      w.u64(fs_.file_count());
      return proto::seal_message(MsgType::kPxListFilesResp, w.data());
    }

    default:
      return error_frame(
          Error(Errc::kUnsupported, "proxy: unknown message type"));
  }
}

Result<Bytes> ProxyUser::call(BytesView frame, MsgType expect) {
  auto resp = channel_.roundtrip(frame);
  if (!resp) {
    return resp;
  }
  auto env = proto::open_message(resp.value());
  if (!env) {
    return env.error();
  }
  if (env.value().type == MsgType::kError) {
    proto::Reader r(env.value().payload);
    auto err = proto::ErrorMsg::from(r);
    if (!err) {
      return Error(Errc::kDecodeError, "proxy user: malformed error");
    }
    return Error(err.value().code, err.value().message);
  }
  if (env.value().type != expect) {
    return Error(Errc::kDecodeError, "proxy user: unexpected response");
  }
  return std::move(env.value().payload);
}

Status ProxyUser::create_file(std::uint64_t file_id,
                              std::span<const Bytes> items) {
  proto::Writer w;
  w.u64(file_id);
  w.u64(items.size());
  for (const Bytes& b : items) {
    w.bytes(b);
  }
  return call(proto::seal_message(MsgType::kPxCreateFileReq, w.data()),
              MsgType::kPxCreateFileResp)
      .status();
}

Result<Bytes> ProxyUser::access(std::uint64_t file_id, proto::ItemRef ref) {
  proto::Writer w;
  w.u64(file_id);
  proto::encode_item_ref(w, ref);
  auto payload = call(proto::seal_message(MsgType::kPxAccessReq, w.data()),
                      MsgType::kPxAccessResp);
  if (!payload) {
    return payload.error();
  }
  proto::Reader r(payload.value());
  Bytes content = r.bytes();
  if (!r.finish()) {
    return Error(Errc::kDecodeError, "proxy user: bad access payload");
  }
  return content;
}

Result<std::uint64_t> ProxyUser::insert(std::uint64_t file_id,
                                        BytesView content) {
  proto::Writer w;
  w.u64(file_id);
  w.bytes(content);
  auto payload = call(proto::seal_message(MsgType::kPxInsertReq, w.data()),
                      MsgType::kPxInsertResp);
  if (!payload) {
    return payload.error();
  }
  proto::Reader r(payload.value());
  const std::uint64_t id = r.u64();
  if (!r.finish()) {
    return Error(Errc::kDecodeError, "proxy user: bad insert payload");
  }
  return id;
}

Status ProxyUser::erase_item(std::uint64_t file_id, proto::ItemRef ref) {
  proto::Writer w;
  w.u64(file_id);
  proto::encode_item_ref(w, ref);
  return call(proto::seal_message(MsgType::kPxEraseReq, w.data()),
              MsgType::kPxEraseResp)
      .status();
}

Status ProxyUser::modify(std::uint64_t file_id, std::uint64_t item_id,
                         BytesView new_content) {
  proto::Writer w;
  w.u64(file_id);
  w.u64(item_id);
  w.bytes(new_content);
  return call(proto::seal_message(MsgType::kPxModifyReq, w.data()),
              MsgType::kPxModifyResp)
      .status();
}

Status ProxyUser::delete_file(std::uint64_t file_id) {
  proto::Writer w;
  w.u64(file_id);
  return call(proto::seal_message(MsgType::kPxDeleteFileReq, w.data()),
              MsgType::kPxDeleteFileResp)
      .status();
}

Result<std::size_t> ProxyUser::file_count() {
  auto payload = call(proto::empty_frame(MsgType::kPxListFilesReq),
                      MsgType::kPxListFilesResp);
  if (!payload) {
    return payload.error();
  }
  proto::Reader r(payload.value());
  const std::uint64_t n = r.u64();
  if (!r.finish()) {
    return Error(Errc::kDecodeError, "proxy user: bad list payload");
  }
  return static_cast<std::size_t>(n);
}

}  // namespace fgad::fskeys
