#include "fskeys/groups.h"

namespace fgad::fskeys {

Status GroupedFileSystem::create_group(std::uint64_t group_id,
                                       std::uint64_t meta_file_id) {
  if (groups_.count(group_id) != 0) {
    return Status(Errc::kInvalidArgument, "groups: group already exists");
  }
  auto fs = std::make_unique<FileSystemClient>(client_, meta_file_id);
  if (auto st = fs->init(); !st) {
    return st;
  }
  groups_.emplace(group_id, std::move(fs));
  return Status::ok();
}

Result<FileSystemClient*> GroupedFileSystem::group(std::uint64_t group_id) {
  const auto it = groups_.find(group_id);
  if (it == groups_.end()) {
    return Error(Errc::kNotFound, "groups: no such group");
  }
  return it->second.get();
}

Result<std::uint64_t> GroupedFileSystem::group_of(
    std::uint64_t file_id) const {
  const auto it = group_of_file_.find(file_id);
  if (it == group_of_file_.end()) {
    return Error(Errc::kNotFound, "groups: unknown file");
  }
  return it->second;
}

Result<FileSystemClient*> GroupedFileSystem::fs_of(std::uint64_t file_id) {
  auto gid = group_of(file_id);
  if (!gid) {
    return gid.error();
  }
  return group(gid.value());
}

Status GroupedFileSystem::create_file(
    std::uint64_t group_id, std::uint64_t file_id, std::size_t n_items,
    const std::function<Bytes(std::size_t)>& item_at) {
  if (group_of_file_.count(file_id) != 0) {
    return Status(Errc::kInvalidArgument, "groups: file already exists");
  }
  auto fs = group(group_id);
  if (!fs) {
    return fs.status();
  }
  if (auto st = fs.value()->create_file(file_id, n_items, item_at); !st) {
    return st;
  }
  group_of_file_.emplace(file_id, group_id);
  return Status::ok();
}

Result<Bytes> GroupedFileSystem::access(std::uint64_t file_id,
                                        proto::ItemRef ref) {
  auto fs = fs_of(file_id);
  if (!fs) return fs.error();
  return fs.value()->access(file_id, ref);
}

Result<std::uint64_t> GroupedFileSystem::insert(std::uint64_t file_id,
                                                BytesView content) {
  auto fs = fs_of(file_id);
  if (!fs) return fs.error();
  return fs.value()->insert(file_id, content);
}

Status GroupedFileSystem::erase_item(std::uint64_t file_id,
                                     proto::ItemRef ref) {
  auto fs = fs_of(file_id);
  if (!fs) return fs.status();
  return fs.value()->erase_item(file_id, ref);
}

Status GroupedFileSystem::modify(std::uint64_t file_id, std::uint64_t item_id,
                                 BytesView new_content) {
  auto fs = fs_of(file_id);
  if (!fs) return fs.status();
  return fs.value()->modify(file_id, item_id, new_content);
}

Status GroupedFileSystem::delete_file(std::uint64_t file_id) {
  auto fs = fs_of(file_id);
  if (!fs) return fs.status();
  if (auto st = fs.value()->delete_file(file_id); !st) {
    return st;
  }
  group_of_file_.erase(file_id);
  return Status::ok();
}

}  // namespace fgad::fskeys
