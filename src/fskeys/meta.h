// Section V: managing master keys for large file systems.
//
// Master keys of all files are themselves outsourced as the data items of a
// *meta modulation tree*, protected by a single higher-level control key.
// The client's persistent secret state is exactly one MasterKey (the
// control key) no matter how many files exist; per-file master keys are
// fetched on demand, used, and wiped.
//
// Deleting a data item of a file takes two steps (paper, Section V):
// first the fine-grained deletion in the file's own tree (which rotates the
// file's master key K_f -> K_f'), then making the *old* K_f unrecoverable
// in the meta tree. We implement the second step as an assured deletion of
// the old meta entry followed by insertion of a fresh entry holding K_f' —
// a literal re-encrypt-in-place "modify" would leave a pre-deletion server
// snapshot decryptable once the control key leaks (see DESIGN.md Section 6;
// fskeys tests demonstrate the distinction).
#pragma once

#include <unordered_map>

#include "client/client.h"

namespace fgad::fskeys {

class FileSystemClient {
 public:
  /// `meta_file_id` is the server-side id reserved for the meta tree.
  FileSystemClient(client::Client& client, std::uint64_t meta_file_id);

  /// Outsources the (initially empty) meta tree; call once.
  Status init();

  /// Outsources a new file: fresh master key, item tree, and a meta entry
  /// binding file_id -> master key. The local copy of the master key is
  /// wiped before returning.
  Status create_file(std::uint64_t file_id, std::span<const Bytes> items);
  Status create_file(std::uint64_t file_id, std::size_t n_items,
                     const std::function<Bytes(std::size_t)>& item_at);

  Result<Bytes> access(std::uint64_t file_id, proto::ItemRef ref);
  Status modify(std::uint64_t file_id, std::uint64_t item_id,
                BytesView new_content);
  Result<std::uint64_t> insert(
      std::uint64_t file_id, BytesView content,
      std::uint64_t after_item_id = core::InsertCommit::kAppend);

  /// Fine-grained assured deletion with the two-level key update.
  Status erase_item(std::uint64_t file_id, proto::ItemRef ref);

  /// Deletes an entire file: its meta entry is assuredly deleted (making
  /// the master key — and hence every item — unrecoverable), then the
  /// server is asked to reclaim the storage.
  Status delete_file(std::uint64_t file_id);

  /// Number of files tracked.
  std::size_t file_count() const { return meta_item_of_.size(); }

  /// Rebuilds the (non-secret) file_id -> meta-entry index from the meta
  /// tree, e.g. on a fresh device that only holds the control key.
  Status rebuild_index();

  /// The client's only persistent secret (exposed for tests/examples that
  /// simulate device compromise).
  const crypto::MasterKey& control_key() const { return meta_.key; }

 private:
  /// Fetches and opens the master key of `file_id` from the meta tree.
  Result<client::Client::FileHandle> open_file(std::uint64_t file_id);

  /// Replaces the meta entry of `file_id` with `key` via assured deletion
  /// of the old entry + insertion of a new one.
  Status rotate_meta_entry(std::uint64_t file_id, const crypto::Md& key);

  static Bytes encode_entry(std::uint64_t file_id, const crypto::Md& key);
  static Result<std::pair<std::uint64_t, crypto::Md>> decode_entry(
      BytesView plaintext);

  client::Client& client_;
  client::Client::FileHandle meta_;
  std::unordered_map<std::uint64_t, std::uint64_t> meta_item_of_;
};

}  // namespace fgad::fskeys
