// Lightweight Result/Status types for recoverable protocol-level failures.
//
// The library throws exceptions for programming errors (violated
// preconditions) but returns Result/Status values for conditions the paper's
// protocol treats as "reject and refuse to proceed": tampered server
// responses, duplicate modulators, failed integrity checks, malformed wire
// data. Callers are expected to inspect these.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace fgad {

enum class Errc {
  kOk = 0,
  kTamperDetected,       // server response fails a security check
  kDuplicateModulator,   // MT(k) modulators not pairwise distinct
  kIntegrityMismatch,    // decrypted item hash does not match
  kDecodeError,          // malformed wire message
  kNotFound,             // unknown file / item
  kInvalidArgument,      // caller misuse detected at a protocol boundary
  kIoError,              // transport failure
  kUnsupported,
  kTimeout,              // per-operation deadline expired
  kConnReset,            // peer closed or reset the connection
  kRetryExhausted,       // bounded retry/backoff gave up
  kIndeterminate,        // a commit's outcome is unknown (transport failed
                         // after send); caller must resync before reuse
  kNotPrimary,           // node is a replication follower (or demoted);
                         // clients must re-route to the current primary
  kStaleTerm,            // replication append carried a fencing term older
                         // than the receiver's; sender must demote
};

/// Human-readable name of an error code.
const char* errc_name(Errc c);

struct Error {
  Errc code = Errc::kOk;
  std::string message;

  Error() = default;
  Error(Errc c, std::string msg) : code(c), message(std::move(msg)) {}

  std::string to_string() const;
};

/// A status: success or an Error.
class Status {
 public:
  Status() = default;  // OK
  Status(Errc c, std::string msg) : err_(Error(c, std::move(msg))) {}
  explicit Status(Error e) : err_(std::move(e)) {}

  static Status ok() { return Status(); }

  bool is_ok() const { return !err_.has_value(); }
  explicit operator bool() const { return is_ok(); }

  /// Error details. Precondition: !is_ok().
  const Error& error() const {
    assert(err_.has_value());
    return *err_;
  }
  Errc code() const { return err_ ? err_->code : Errc::kOk; }

  std::string to_string() const;

 private:
  std::optional<Error> err_;
};

/// Result<T>: holds either a value or an Error.
template <typename T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Error e) : v_(std::move(e)) {}      // NOLINT: implicit by design
  Result(Errc c, std::string msg) : v_(Error(c, std::move(msg))) {}

  bool is_ok() const { return std::holds_alternative<T>(v_); }
  explicit operator bool() const { return is_ok(); }

  /// Precondition: is_ok().
  T& value() & {
    assert(is_ok());
    return std::get<T>(v_);
  }
  const T& value() const& {
    assert(is_ok());
    return std::get<T>(v_);
  }
  T&& value() && {
    assert(is_ok());
    return std::get<T>(std::move(v_));
  }

  /// Precondition: !is_ok().
  const Error& error() const {
    assert(!is_ok());
    return std::get<Error>(v_);
  }
  Errc code() const {
    return is_ok() ? Errc::kOk : error().code;
  }

  Status status() const {
    return is_ok() ? Status::ok() : Status(error());
  }

 private:
  std::variant<T, Error> v_;
};

}  // namespace fgad
