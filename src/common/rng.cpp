#include "common/rng.h"

namespace fgad {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& s : s_) {
    s = splitmix64(sm);
  }
}

std::uint64_t Xoshiro256::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Xoshiro256::next_below(std::uint64_t bound) noexcept {
  // Lemire-style rejection-free reduction is fine for non-crypto use, but we
  // keep the simple unbiased rejection loop to make test distributions exact.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

void Xoshiro256::fill(std::span<std::uint8_t> out) noexcept {
  std::size_t i = 0;
  while (i + 8 <= out.size()) {
    const std::uint64_t v = next();
    for (int b = 0; b < 8; ++b) {
      out[i + b] = static_cast<std::uint8_t>(v >> (8 * b));
    }
    i += 8;
  }
  if (i < out.size()) {
    const std::uint64_t v = next();
    for (std::size_t b = 0; i < out.size(); ++i, ++b) {
      out[i] = static_cast<std::uint8_t>(v >> (8 * b));
    }
  }
}

}  // namespace fgad
