// Crash-safe filesystem primitives shared by the durability layer
// (cloud/wal, cloud/recovery) and every on-disk writer that claims to be
// atomic (server images, the client keystore).
//
// "Atomic" here means the POSIX temp-file dance done *completely*: write
// to `<path>.tmp`, fsync the file, rename over `path`, fsync the parent
// directory. Skipping either fsync leaves a window where a power cut
// produces an empty or missing file even though rename(2) itself is atomic
// (DESIGN.md §13).
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.h"
#include "common/result.h"

namespace fgad::fsio {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over `data`,
/// seeded with `seed` so multi-span checksums can be chained.
std::uint32_t crc32(BytesView data, std::uint32_t seed = 0);

/// Writes `data` to `path` atomically and durably: temp file in the same
/// directory, fsync, rename, fsync parent dir. On any failure the original
/// file (if one existed) is untouched.
Status atomic_write_file(const std::string& path, BytesView data);

/// fsyncs the directory containing `path` so a just-created or
/// just-renamed entry survives a crash.
Status fsync_parent_dir(const std::string& path);

/// Reads the whole file; kIoError when it cannot be opened.
Result<Bytes> read_file(const std::string& path);

/// True iff `path` exists (any file type).
bool exists(const std::string& path);

}  // namespace fgad::fsio
