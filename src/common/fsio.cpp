#include "common/fsio.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>

namespace fgad::fsio {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    t[i] = c;
  }
  return t;
}

std::string dir_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) {
    return ".";
  }
  return slash == 0 ? "/" : path.substr(0, slash);
}

Status errno_status(const std::string& what) {
  return Status(Errc::kIoError, what + ": " + std::strerror(errno));
}

/// write(2) until done; short writes are resumed, EINTR retried.
Status write_all(int fd, BytesView data) {
  const std::uint8_t* p = data.data();
  std::size_t left = data.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return errno_status("write");
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  return Status::ok();
}

}  // namespace

std::uint32_t crc32(BytesView data, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::uint8_t b : data) {
    c = table[(c ^ b) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

Status fsync_parent_dir(const std::string& path) {
  const std::string dir = dir_of(path);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) {
    return errno_status("open dir " + dir);
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return errno_status("fsync dir " + dir);
  }
  return Status::ok();
}

Status atomic_write_file(const std::string& path, BytesView data) {
  const std::string tmp = path + ".tmp";
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return errno_status("open " + tmp);
  }
  Status st = write_all(fd, data);
  if (st && ::fsync(fd) != 0) {
    st = errno_status("fsync " + tmp);
  }
  if (::close(fd) != 0 && st) {
    st = errno_status("close " + tmp);
  }
  if (!st) {
    ::unlink(tmp.c_str());
    return st;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    st = errno_status("rename " + tmp + " -> " + path);
    ::unlink(tmp.c_str());
    return st;
  }
  return fsync_parent_dir(path);
}

Result<Bytes> read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Error(Errc::kIoError, "cannot open " + path);
  }
  Bytes data;
  std::uint8_t buf[1 << 16];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    data.insert(data.end(), buf, buf + got);
  }
  const bool err = std::ferror(f) != 0;
  std::fclose(f);
  if (err) {
    return Error(Errc::kIoError, "read failed: " + path);
  }
  return data;
}

bool exists(const std::string& path) {
  struct stat st {};
  return ::stat(path.c_str(), &st) == 0;
}

}  // namespace fgad::fsio
