#include "common/thread_pool.h"

#include <algorithm>

namespace fgad {

namespace {
// Chunks per worker: enough slack that uneven chunks (left-complete trees
// put deeper subtrees on the left) rebalance via the shared cursor, small
// enough that chunk-claim traffic stays negligible.
constexpr std::size_t kChunksPerWorker = 4;
}  // namespace

std::size_t ThreadPool::default_threads() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t total = resolve_threads(threads);
  workers_.reserve(total - 1);
  for (std::size_t i = 1; i < total; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  wake_.notify_all();
  for (auto& t : workers_) {
    t.join();
  }
}

void ThreadPool::run_chunks(std::size_t worker_index) {
  // Job fields are stable for the duration of a generation: the submitter
  // only rewrites them once every participant has left this function (it
  // waits for active_ == 0 under mu_), and readers enter only after
  // synchronizing on the generation bump through mu_.
  const std::size_t chunks = job_chunks_;
  const std::size_t n = job_n_;
  const ChunkFn* body = body_;
  for (;;) {
    const std::size_t c = next_chunk_.fetch_add(1, std::memory_order_relaxed);
    if (c >= chunks) {
      return;
    }
    const std::size_t begin = c * n / chunks;
    const std::size_t end = (c + 1) * n / chunks;
    if (begin < end) {
      try {
        (*body)(begin, end, worker_index);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu_);
        if (!first_error_) {
          first_error_ = std::current_exception();
        }
      }
    }
    done_chunks_.fetch_add(1, std::memory_order_acq_rel);
  }
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      wake_.wait(lock, [&] {
        return stop_ || generation_ != seen_generation;
      });
      if (stop_) {
        return;
      }
      seen_generation = generation_;
      ++active_;
    }
    run_chunks(worker_index);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
    }
    done_.notify_all();
  }
}

void ThreadPool::parallel_for(std::size_t n, std::size_t grain,
                              const ChunkFn& body) {
  if (n == 0) {
    return;
  }
  grain = std::max<std::size_t>(grain, 1);
  const std::size_t max_chunks = size() * kChunksPerWorker;
  const std::size_t chunks =
      std::clamp<std::size_t>((n + grain - 1) / grain, 1, max_chunks);

  if (workers_.empty() || chunks == 1) {
    body(0, n, 0);
    return;
  }

  std::lock_guard<std::mutex> submit_lock(submit_mu_);
  {
    // A straggler from a prior generation may still be draining its (empty)
    // cursor; wait it out before rewriting the job fields.
    std::unique_lock<std::mutex> lock(mu_);
    done_.wait(lock, [&] { return active_ == 0; });
    body_ = &body;
    job_n_ = n;
    job_chunks_ = chunks;
    next_chunk_.store(0, std::memory_order_relaxed);
    done_chunks_.store(0, std::memory_order_relaxed);
    first_error_ = nullptr;
    ++generation_;
  }
  wake_.notify_all();

  run_chunks(/*worker_index=*/0);

  {
    std::unique_lock<std::mutex> lock(mu_);
    done_.wait(lock, [&] {
      return active_ == 0 &&
             done_chunks_.load(std::memory_order_acquire) == job_chunks_;
    });
  }
  if (first_error_) {
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }
}

}  // namespace fgad
