// Byte-buffer utilities shared across the library.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace fgad {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

/// Hex-encodes `data` (lowercase, no separators).
std::string to_hex(BytesView data);

/// Decodes a hex string produced by to_hex(). Throws std::invalid_argument
/// on odd length or non-hex characters.
Bytes from_hex(std::string_view hex);

/// XORs `src` into `dst`. Both spans must have the same length.
void xor_into(std::span<std::uint8_t> dst, BytesView src);

/// Converts a string literal/body to Bytes (no terminating NUL).
Bytes to_bytes(std::string_view s);

/// Converts Bytes to std::string (byte-for-byte).
std::string to_string(BytesView b);

/// Appends `src` to `dst`.
void append(Bytes& dst, BytesView src);

}  // namespace fgad
