#include "common/result.h"

namespace fgad {

const char* errc_name(Errc c) {
  switch (c) {
    case Errc::kOk:
      return "OK";
    case Errc::kTamperDetected:
      return "TAMPER_DETECTED";
    case Errc::kDuplicateModulator:
      return "DUPLICATE_MODULATOR";
    case Errc::kIntegrityMismatch:
      return "INTEGRITY_MISMATCH";
    case Errc::kDecodeError:
      return "DECODE_ERROR";
    case Errc::kNotFound:
      return "NOT_FOUND";
    case Errc::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case Errc::kIoError:
      return "IO_ERROR";
    case Errc::kUnsupported:
      return "UNSUPPORTED";
    case Errc::kTimeout:
      return "TIMEOUT";
    case Errc::kConnReset:
      return "CONN_RESET";
    case Errc::kRetryExhausted:
      return "RETRY_EXHAUSTED";
    case Errc::kIndeterminate:
      return "INDETERMINATE";
    case Errc::kNotPrimary:
      return "NOT_PRIMARY";
    case Errc::kStaleTerm:
      return "STALE_TERM";
  }
  return "UNKNOWN";
}

std::string Error::to_string() const {
  std::string s = errc_name(code);
  if (!message.empty()) {
    s += ": ";
    s += message;
  }
  return s;
}

std::string Status::to_string() const {
  return is_ok() ? "OK" : err_->to_string();
}

}  // namespace fgad
