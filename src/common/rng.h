// Deterministic pseudo-random generation for tests and benchmark setup.
//
// This is NOT a cryptographic RNG. Production key/modulator generation uses
// crypto/random.h (OpenSSL RAND_bytes). Benchmarks and property tests use
// this xoshiro256** generator so runs are reproducible.
#pragma once

#include <cstdint>

#include "common/bytes.h"

namespace fgad {

/// xoshiro256** seeded through splitmix64. Deterministic and fast.
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed) noexcept;

  std::uint64_t next() noexcept;

  /// Uniform value in [0, bound). bound must be nonzero.
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Fills `out` with pseudo-random bytes.
  void fill(std::span<std::uint8_t> out) noexcept;

  // UniformRandomBitGenerator interface so <random>/<algorithm> accept it.
  using result_type = std::uint64_t;
  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ull; }
  result_type operator()() noexcept { return next(); }

 private:
  std::uint64_t s_[4];
};

}  // namespace fgad
