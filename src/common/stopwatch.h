// Wall-clock stopwatch and cumulative timer used for the paper's
// client-computation-overhead measurements (Figure 6, Tables II-III).
#pragma once

#include <chrono>
#include <cstdint>

namespace fgad {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double elapsed_ms() const { return elapsed_seconds() * 1e3; }
  std::uint64_t elapsed_ns() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates time across disjoint measured sections; the Client uses one
/// to report pure client-side computation (excluding transport time).
class CumulativeTimer {
 public:
  void add_seconds(double s) { total_s_ += s; }
  void reset() { total_s_ = 0; }
  double total_seconds() const { return total_s_; }
  double total_ms() const { return total_s_ * 1e3; }

  /// RAII section: adds the section's duration on destruction.
  class Section {
   public:
    explicit Section(CumulativeTimer& t) : t_(t) {}
    ~Section() { t_.add_seconds(sw_.elapsed_seconds()); }
    Section(const Section&) = delete;
    Section& operator=(const Section&) = delete;

   private:
    CumulativeTimer& t_;
    Stopwatch sw_;
  };

 private:
  double total_s_ = 0;
};

}  // namespace fgad
