// Reusable worker pool with a chunked parallel_for over index ranges.
//
// The modulation-tree workloads (bulk key derivation, whole-file
// sealing/unsealing, integrity-tree rebuilds) are embarrassingly parallel
// over item or node indices, but the per-element work is a handful of
// hash/AES calls — far too small to pay a task-queue round trip per
// element. ThreadPool therefore exposes exactly one primitive:
//
//   pool.parallel_for(n, [](std::size_t begin, std::size_t end,
//                           std::size_t worker) { ... });
//
// [0, n) is split into a bounded number of contiguous chunks; idle workers
// grab chunks from a shared atomic cursor (so uneven chunks still balance),
// and the calling thread participates as worker 0. `worker` is a stable
// index in [0, size()), which callers use to pick thread-local resources —
// OpenSSL EVP contexts (crypto::Hasher, core::ItemCodec) are NOT shareable
// across threads, so each worker must construct or index its own.
//
// A pool of size 1 (or n below the serial cutoff) runs the body inline on
// the caller with a single [0, n) chunk: no threads are spawned and
// execution order is exactly the sequential loop, which is how
// `threads = 1` configurations reproduce seed behavior precisely.
//
// parallel_for calls are serialized internally; the pool may be shared by
// callers on different threads, but the body itself must not re-enter
// parallel_for on the same pool (no nested parallelism).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fgad {

class ThreadPool {
 public:
  /// `threads` = total workers including the calling thread; 0 picks
  /// hardware_concurrency(). A pool of size 1 spawns no threads.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total worker count including the calling thread (>= 1).
  std::size_t size() const noexcept { return workers_.size() + 1; }

  /// hardware_concurrency(), clamped to at least 1.
  static std::size_t default_threads() noexcept;

  /// Resolves a user-facing thread knob: 0 -> default_threads(), else n.
  static std::size_t resolve_threads(std::size_t n) noexcept {
    return n == 0 ? default_threads() : n;
  }

  using ChunkFn =
      std::function<void(std::size_t begin, std::size_t end,
                         std::size_t worker)>;

  /// Runs `body` over [0, n) in contiguous chunks of at least `grain`
  /// elements. Blocks until every chunk finished; rethrows the first
  /// exception a chunk threw (remaining chunks still run to completion).
  void parallel_for(std::size_t n, std::size_t grain, const ChunkFn& body);

  void parallel_for(std::size_t n, const ChunkFn& body) {
    parallel_for(n, /*grain=*/1, body);
  }

 private:
  void worker_loop(std::size_t worker_index);
  void run_chunks(std::size_t worker_index);

  // Current job (valid while generation_ is odd-stepped by submit).
  const ChunkFn* body_ = nullptr;
  std::size_t job_n_ = 0;
  std::size_t job_chunks_ = 0;
  std::atomic<std::size_t> next_chunk_{0};
  std::atomic<std::size_t> done_chunks_{0};
  std::exception_ptr first_error_;
  std::mutex error_mu_;

  std::mutex mu_;                  // guards generation_/active_/stop_ + job fields
  std::condition_variable wake_;   // workers wait here for a new generation
  std::condition_variable done_;   // submitter waits here for completion
  std::uint64_t generation_ = 0;
  std::size_t active_ = 0;  // workers currently inside run_chunks
  bool stop_ = false;

  std::mutex submit_mu_;  // serializes whole parallel_for calls
  std::vector<std::thread> workers_;
};

}  // namespace fgad
