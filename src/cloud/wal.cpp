#include "cloud/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>

#include "common/fsio.h"
#include "obs/flight_recorder.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "proto/wire.h"

namespace fgad::cloud {

namespace {

constexpr std::uint32_t kWalMagic = 0x4647574C;  // "FGWL"
constexpr std::uint16_t kWalVersion = 1;
constexpr std::size_t kHeaderSize = 4 + 2 + 8;
// A WAL record never exceeds a wire frame plus its envelope by much; this
// bound rejects absurd lengths from a corrupted length prefix without
// attempting the allocation.
constexpr std::uint32_t kMaxRecordPayload = 1u << 30;

Status errno_status(const std::string& what) {
  return Status(Errc::kIoError, what + ": " + std::strerror(errno));
}

Status write_all_fd(int fd, BytesView data) {
  const std::uint8_t* p = data.data();
  std::size_t left = data.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return errno_status("wal write");
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  return Status::ok();
}

obs::Counter& appends_counter() {
  static obs::Counter& c =
      obs::Registry::instance().counter("fgad_wal_appends_total");
  return c;
}
obs::Counter& fsyncs_counter() {
  static obs::Counter& c =
      obs::Registry::instance().counter("fgad_wal_fsyncs_total");
  return c;
}
obs::Counter& bytes_counter() {
  static obs::Counter& c =
      obs::Registry::instance().counter("fgad_wal_bytes_total");
  return c;
}
obs::Histogram& append_hist() {
  static obs::Histogram& h =
      obs::Registry::instance().histogram("fgad_wal_append_ns");
  return h;
}
obs::Histogram& fsync_hist() {
  static obs::Histogram& h =
      obs::Registry::instance().histogram("fgad_wal_fsync_ns");
  return h;
}
obs::Gauge& wal_size_gauge() {
  static obs::Gauge& g =
      obs::Registry::instance().gauge("fgad_wal_size_bytes");
  return g;
}
obs::Gauge& wal_epoch_gauge() {
  static obs::Gauge& g = obs::Registry::instance().gauge("fgad_wal_epoch");
  return g;
}

}  // namespace

// ---- crash points ----------------------------------------------------------

const char* crash_site_name(CrashSite s) {
  switch (s) {
    case CrashSite::kBeforeWalAppend:
      return "before-wal";
    case CrashSite::kAfterWalPreAck:
      return "after-wal-pre-ack";
    case CrashSite::kMidCheckpoint:
      return "mid-checkpoint";
    case CrashSite::kPostRename:
      return "post-rename";
    case CrashSite::kBeforeGroupFsync:
      return "before-group-fsync";
    default:
      return "unknown";
  }
}

CrashPoint& CrashPoint::instance() {
  static CrashPoint cp;
  return cp;
}

void CrashPoint::set_handler(CrashSite site, Handler h) {
  const int i = static_cast<int>(site);
  std::lock_guard<std::mutex> lock(mu_);
  armed_[i].store(h != nullptr, std::memory_order_release);
  handlers_[i] = std::move(h);
}

void CrashPoint::arm_throw(CrashSite site) {
  set_handler(site, [](CrashSite s) { throw CrashError{s}; });
}

void CrashPoint::reset() {
  for (int i = 0; i < static_cast<int>(CrashSite::kCount); ++i) {
    set_handler(static_cast<CrashSite>(i), nullptr);
  }
}

void CrashPoint::fire(CrashSite site) {
  const int i = static_cast<int>(site);
  if (!armed_[i].load(std::memory_order_acquire)) {
    return;
  }
  Handler h;
  {
    std::lock_guard<std::mutex> lock(mu_);
    h = handlers_[i];
  }
  if (h) {
    // The handler is about to simulate sudden death (throw or _exit), so
    // capture the evidence first: the dump's tail then shows the exact
    // mutation in flight (rid + WAL LSN) when the "crash" hit.
    auto& fr = obs::FlightRecorder::instance();
    fr.record(obs::FrEvent::kCrashPoint, obs::current_request_id(),
              static_cast<std::uint64_t>(i));
    char path[obs::FlightRecorder::kMaxDumpDir + 128];
    if (fr.dump_auto("crashpoint", path, sizeof(path))) {
      obs::Logger::instance().log(
          obs::Level::kWarn, "flight_recorder_dump",
          obs::Kv().str("path", path).str("site", crash_site_name(site)));
    }
    h(site);
  }
}

Status CrashPoint::arm_process_exit(const std::string& spec) {
  std::string name = spec;
  long nth = 1;
  if (const std::size_t colon = spec.find(':'); colon != std::string::npos) {
    name = spec.substr(0, colon);
    const char* digits = spec.c_str() + colon + 1;
    char* end = nullptr;
    nth = std::strtol(digits, &end, 10);
    if (*digits == '\0' || end == nullptr || *end != '\0' || nth < 1) {
      return Status(Errc::kInvalidArgument,
                    "bad crash-point count in: " + spec);
    }
  }
  for (int i = 0; i < static_cast<int>(CrashSite::kCount); ++i) {
    const auto site = static_cast<CrashSite>(i);
    if (name == crash_site_name(site) ||
        name == std::to_string(i)) {
      auto remaining = std::make_shared<std::atomic<long>>(nth);
      set_handler(site, [remaining](CrashSite) {
        if (remaining->fetch_sub(1) == 1) {
          ::_exit(42);  // simulate sudden death: no flushes, no destructors
        }
      });
      return Status::ok();
    }
  }
  return Status(Errc::kInvalidArgument, "unknown crash site: " + spec);
}

// ---- Wal -------------------------------------------------------------------

Wal::Wal(std::string path, int fd, std::uint64_t epoch, std::uint64_t size,
         Options opts)
    : path_(std::move(path)),
      epoch_(epoch),
      opts_(opts),
      fd_(fd),
      written_(size),
      durable_(size) {
  wal_epoch_gauge().set(static_cast<std::int64_t>(epoch_));
  wal_size_gauge().set(static_cast<std::int64_t>(written_));
  if (opts_.sync_ms > 0) {
    syncer_ = std::thread([this] { syncer_loop(); });
  }
}

Wal::~Wal() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (syncer_.joinable()) {
    syncer_.join();
  }
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

Result<std::unique_ptr<Wal>> Wal::create(const std::string& path,
                                         std::uint64_t epoch, Options opts) {
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Error(Errc::kIoError,
                 "wal create " + path + ": " + std::strerror(errno));
  }
  proto::Writer w;
  w.u32(kWalMagic);
  w.u16(kWalVersion);
  w.u64(epoch);
  Status st = write_all_fd(fd, w.data());
  if (st && ::fsync(fd) != 0) {
    st = errno_status("wal fsync header");
  }
  if (!st) {
    ::close(fd);
    return st.error();
  }
  if (auto ds = fsio::fsync_parent_dir(path); !ds) {
    ::close(fd);
    return ds.error();
  }
  return std::unique_ptr<Wal>(
      new Wal(path, fd, epoch, kHeaderSize, opts));
}

Result<Wal::ScanResult> Wal::scan(
    const std::string& path, const std::function<void(const Record&)>& fn) {
  auto data = fsio::read_file(path);
  if (!data) {
    return data.error();
  }
  const Bytes& buf = data.value();
  if (buf.size() < kHeaderSize) {
    return Error(Errc::kDecodeError, "wal " + path + ": truncated header");
  }
  proto::Reader hr(BytesView(buf.data(), kHeaderSize));
  if (hr.u32() != kWalMagic || hr.u16() != kWalVersion) {
    return Error(Errc::kDecodeError, "wal " + path + ": bad magic/version");
  }
  ScanResult out;
  out.epoch = hr.u64();
  out.valid_end = kHeaderSize;

  std::size_t pos = kHeaderSize;
  while (pos < buf.size()) {
    if (buf.size() - pos < 8) {
      out.torn_tail = true;  // partial frame header
      break;
    }
    proto::Reader fr(BytesView(buf.data() + pos, 8));
    const std::uint32_t len = fr.u32();
    const std::uint32_t crc = fr.u32();
    if (len < 8 + 4 || len > kMaxRecordPayload ||
        len > buf.size() - pos - 8) {
      out.torn_tail = true;  // truncated payload or corrupted length
      break;
    }
    const BytesView payload(buf.data() + pos + 8, len);
    if (fsio::crc32(payload) != crc) {
      out.torn_tail = true;  // bit rot or torn write inside the payload
      break;
    }
    proto::Reader pr(payload);
    Record rec;
    rec.lsn = pr.u64();
    rec.request = pr.bytes();
    if (!pr.at_end()) {
      out.torn_tail = true;
      break;
    }
    if (fn) {
      fn(rec);
    }
    ++out.records;
    out.max_lsn = std::max(out.max_lsn, rec.lsn);
    pos += 8 + len;
    out.valid_end = pos;
  }
  return out;
}

Result<std::unique_ptr<Wal>> Wal::reopen(const std::string& path,
                                         const ScanResult& scan,
                                         Options opts) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CLOEXEC);
  if (fd < 0) {
    return Error(Errc::kIoError,
                 "wal reopen " + path + ": " + std::strerror(errno));
  }
  // Drop the torn tail (if any) so new records start on a clean frame
  // boundary, and make the truncation durable before appending past it.
  if (::ftruncate(fd, static_cast<off_t>(scan.valid_end)) != 0 ||
      ::lseek(fd, 0, SEEK_END) < 0 || ::fsync(fd) != 0) {
    const Status st = errno_status("wal truncate " + path);
    ::close(fd);
    return st.error();
  }
  return std::unique_ptr<Wal>(
      new Wal(path, fd, scan.epoch, scan.valid_end, opts));
}

Result<std::uint64_t> Wal::append(std::uint64_t lsn, BytesView request,
                                  bool defer_sync) {
  proto::Writer pw;
  pw.u64(lsn);
  pw.bytes(request);
  proto::Writer fw;
  fw.u32(static_cast<std::uint32_t>(pw.size()));
  fw.u32(fsio::crc32(pw.data()));
  fw.raw(pw.data());

  std::unique_lock<std::mutex> lock(mu_);
  {
    obs::ScopedTimer timer(append_hist());
    if (auto st = write_all_fd(fd_, fw.data()); !st) {
      return st.error();
    }
  }
  written_ += fw.size();
  const std::uint64_t ticket = written_;
  appends_counter().inc();
  bytes_counter().inc(fw.size());
  wal_size_gauge().set(static_cast<std::int64_t>(written_));
  obs::FlightRecorder::instance().record(
      obs::FrEvent::kWalAppend, obs::current_request_id(), lsn, fw.size());
  if (opts_.sync_ms == 0 && !defer_sync) {
    if (auto st = fsync_locked_bytes(ticket); !st) {
      return st.error();
    }
  }
  return ticket;
}

Status Wal::sync_to(std::uint64_t ticket) {
  std::unique_lock<std::mutex> lock(mu_);
  if (opts_.sync_ms < 0) {
    return Status::ok();  // durability disabled (bench-only)
  }
  const Status st = fsync_locked_bytes(ticket);
  lock.unlock();
  // Window-mode handlers may be parked in sync_through() on bytes this
  // flush just covered.
  cv_.notify_all();
  return st;
}

Status Wal::fsync_locked_bytes(std::uint64_t upto) {
  // Precondition: mu_ held. fsync covers everything written so far.
  if (durable_ >= upto) {
    return Status::ok();
  }
  const std::uint64_t t0 = obs::now_ns();
  if (::fsync(fd_) != 0) {
    sync_error_ = errno_status("wal fsync");
    return sync_error_;
  }
  const std::uint64_t dur = obs::now_ns() - t0;
  fsyncs_counter().inc();
  fsync_hist().observe(dur);
  durable_ = written_;
  obs::FlightRecorder::instance().record(
      obs::FrEvent::kWalFsync, obs::current_request_id(), durable_, dur);
  return Status::ok();
}

Status Wal::sync_through(std::uint64_t ticket) {
  std::unique_lock<std::mutex> lock(mu_);
  if (opts_.sync_ms < 0) {
    return Status::ok();  // durability disabled (bench-only)
  }
  if (opts_.sync_ms == 0) {
    return fsync_locked_bytes(ticket);
  }
  cv_.wait(lock, [&] {
    return durable_ >= ticket || !sync_error_.is_ok() || stop_;
  });
  if (!sync_error_.is_ok()) {
    return sync_error_;
  }
  if (durable_ < ticket) {
    return Status(Errc::kIoError, "wal: shut down before sync completed");
  }
  return Status::ok();
}

Status Wal::sync_now() {
  std::unique_lock<std::mutex> lock(mu_);
  if (opts_.sync_ms < 0) {
    return Status::ok();
  }
  return fsync_locked_bytes(written_);
}

std::uint64_t Wal::appended_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return written_;
}

std::uint64_t Wal::durable_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return durable_;
}

void Wal::syncer_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    cv_.wait_for(lock, std::chrono::milliseconds(opts_.sync_ms),
                 [&] { return stop_; });
    if (durable_ < written_ && sync_error_.is_ok()) {
      fsync_locked_bytes(written_);
      cv_.notify_all();
    }
  }
  // Final drain so a clean shutdown loses nothing.
  if (durable_ < written_ && sync_error_.is_ok()) {
    fsync_locked_bytes(written_);
  }
  cv_.notify_all();
}

}  // namespace fgad::cloud
