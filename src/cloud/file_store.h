// One outsourced file on the cloud server: modulation tree + item store.
//
// FileStore glues the two server-side structures together and keeps their
// cross-references consistent: the tree's leaves point at item slots, item
// records point back at their leaves, and every tree mutation's LeafMove
// notifications are applied to the store. It also implements the three item
// addressing modes of the paper (record id, ordinal, plaintext byte offset)
// and whole-file persistence.
#pragma once

#include <utility>

#include <optional>

#include "cloud/item_store.h"
#include "common/thread_pool.h"
#include "core/tree.h"
#include "integrity/merkle.h"
#include "proto/messages.h"

namespace fgad::cloud {

class FileStore {
 public:
  /// `pool` (optional, non-owning, typically the CloudServer's) parallelizes
  /// the bulk integrity-tree leaf hashing on ingest/reload; each worker uses
  /// its own Hasher. Results are identical with or without it.
  FileStore(crypto::HashAlg alg, bool track_duplicates,
            bool enable_integrity = true, ThreadPool* pool = nullptr)
      : tree_(core::ModulationTree::Config{alg, track_duplicates}),
        pool_(pool) {
    if (enable_integrity) {
      integrity_.emplace(alg);
    }
  }

  const core::ModulationTree& tree() const { return tree_; }
  const ItemStore& items() const { return items_; }
  std::size_t item_count() const { return items_.size(); }

  struct IngestItem {
    std::uint64_t item_id;
    Bytes ciphertext;
    std::uint64_t plain_size;
  };

  /// Installs a freshly outsourced file. The tree's leaf item_slot values
  /// must be item indices 0..n-1 (as produced by core::Outsourcer); the
  /// store must be empty.
  Status ingest(core::ModulationTree tree, std::vector<IngestItem> items);

  /// Resolves an item reference (id / ordinal / byte offset).
  Result<std::uint32_t> resolve(const proto::ItemRef& ref) const;

  Result<core::AccessInfo> access(std::uint32_t slot) const;

  Status modify(std::uint64_t item_id, Bytes ciphertext,
                std::uint64_t plain_size);

  Result<core::DeleteInfo> delete_begin(std::uint32_t slot) const;
  Status delete_commit(const core::DeleteCommit& commit);

  /// Merged-cut bulk deletion (DESIGN.md §16). `slots` must be valid and
  /// resolve to distinct items; the returned info's targets are ordered by
  /// leaf node id ascending.
  Result<core::DeleteManyInfo> delete_many_begin(
      std::span<const std::uint32_t> slots) const;
  Status delete_many_commit(const core::DeleteManyCommit& commit);

  core::InsertInfo insert_begin() const { return tree_.insert_info(); }
  Status insert_commit(const core::InsertCommit& commit);

  Bytes serialized_tree() const;
  std::uint64_t tree_bytes() const { return tree_.serialized_size(); }

  /// Whole-file persistence: tree + items (in file order).
  void serialize(proto::Writer& w) const;
  static Result<FileStore> deserialize(proto::Reader& r, bool track_duplicates,
                                       bool enable_integrity = true,
                                       ThreadPool* pool = nullptr);

  // ---- integrity (PDP/PoR substrate) ---------------------------------------

  bool integrity_enabled() const { return integrity_.has_value(); }
  /// Current hash-tree root (zero digest when integrity is off/empty).
  crypto::Md integrity_root() const;
  /// Builds one audit response entry for the item in `slot`.
  Result<proto::AuditResp::Entry> audit_entry(std::uint32_t slot,
                                              bool include_ciphertext) const;

 private:
  void integrity_rebuild();
  void integrity_refresh_leaf(std::uint32_t slot);

  core::ModulationTree tree_;
  ItemStore items_;
  std::optional<integrity::HashTree> integrity_;
  ThreadPool* pool_ = nullptr;
};

}  // namespace fgad::cloud
