// The cloud server: multi-file storage plus the wire-protocol dispatcher.
//
// CloudServer is the second party of the paper's two-party system. It holds
// modulation trees and ciphertexts (it never sees a key or a plaintext),
// answers the protocol requests of proto/messages.h, and additionally
// offers a plain blob table (kv_*) used by the Section III baseline
// solutions, which have no tree.
//
// Adversarial testing: the threat model gives the attacker full server
// control, so the server exposes tamper hooks that mutate outgoing
// responses — tests use them to verify the client rejects wrong-leaf MT(k'),
// cloned paths, and corrupted ciphertexts (Theorem 2, case ii).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "cloud/file_store.h"
#include "common/thread_pool.h"
#include "proto/messages.h"

namespace fgad::cloud {

class CloudServer {
 public:
  struct Options {
    bool track_duplicates = true;
    bool enable_integrity = true;  // maintain hash trees + serve audits
    // Worker threads for bulk server-side work (integrity-tree hashing on
    // ingest/reload): 0 = hardware_concurrency, 1 = fully sequential.
    // Output state is identical at every setting.
    std::size_t threads = 0;
  };

  CloudServer() : CloudServer(Options{}) {}
  explicit CloudServer(Options opts);

  // ---- native file API ---------------------------------------------------

  /// Installs an outsourced file (tree + sealed items).
  Status outsource(std::uint64_t file_id, core::ModulationTree tree,
                   std::vector<FileStore::IngestItem> items);

  Result<core::AccessInfo> access(std::uint64_t file_id,
                                  const proto::ItemRef& ref) const;
  Status modify(std::uint64_t file_id, std::uint64_t item_id, Bytes ct,
                std::uint64_t plain_size);

  Result<core::DeleteInfo> delete_begin(std::uint64_t file_id,
                                        const proto::ItemRef& ref) const;
  Status delete_commit(std::uint64_t file_id, const core::DeleteCommit& c);

  /// Merged-cut bulk deletion: one begin/commit exchange deletes every
  /// referenced item of one file under a single key rotation.
  Result<core::DeleteManyInfo> delete_many_begin(
      std::uint64_t file_id, const std::vector<proto::ItemRef>& refs) const;
  Status delete_many_commit(std::uint64_t file_id,
                            const core::DeleteManyCommit& c);

  Result<core::InsertInfo> insert_begin(std::uint64_t file_id) const;
  Status insert_commit(std::uint64_t file_id, const core::InsertCommit& c);

  Result<Bytes> fetch_tree(std::uint64_t file_id) const;
  Status drop_file(std::uint64_t file_id);

  /// Integrity audit: membership proofs for the requested items/leaves.
  Result<proto::AuditResp> audit(std::uint64_t file_id,
                                 const proto::AuditReq& req) const;

  bool has_file(std::uint64_t file_id) const {
    return files_.count(file_id) != 0;
  }
  const FileStore* file(std::uint64_t file_id) const;
  FileStore* mutable_file(std::uint64_t file_id);
  /// Ids of every stored file, sorted ascending (fsck, tooling).
  std::vector<std::uint64_t> file_ids() const;

  // ---- blob tables (baseline substrate) -----------------------------------

  void kv_put(std::uint64_t table, std::uint64_t key, Bytes value);
  Result<Bytes> kv_get(std::uint64_t table, std::uint64_t key) const;
  Status kv_delete(std::uint64_t table, std::uint64_t key);
  std::size_t kv_size(std::uint64_t table) const;

  // ---- persistence -----------------------------------------------------------

  /// Serializes every file and blob table (crash/restart durability).
  void save(proto::Writer& w) const;
  /// Restores a server image produced by save().
  static Result<std::unique_ptr<CloudServer>> load(proto::Reader& r,
                                                   Options opts);
  Status save_to_file(const std::string& path) const;
  static Result<std::unique_ptr<CloudServer>> load_from_file(
      const std::string& path, Options opts);

  // ---- wire dispatcher -----------------------------------------------------

  /// Handles one framed request and produces the framed response.
  /// Thread-safe: the TCP server runs one thread per connection, so the
  /// dispatcher serializes request handling behind a coarse mutex (the
  /// native API is not synchronized — in-process embedders own their
  /// threading).
  Bytes handle(BytesView request);

  // ---- adversarial hooks ---------------------------------------------------

  std::function<void(core::DeleteInfo&)> tamper_delete_info;
  std::function<void(core::DeleteManyInfo&)> tamper_delete_many_info;
  std::function<void(core::AccessInfo&)> tamper_access_info;
  std::function<void(core::InsertInfo&)> tamper_insert_info;

 private:
  Result<const FileStore*> get_file(std::uint64_t file_id) const;
  Result<FileStore*> get_file(std::uint64_t file_id);
  Bytes handle_locked(BytesView request);

  mutable std::mutex mu_;

  Options opts_ = {};
  std::unique_ptr<ThreadPool> pool_;  // null when opts_.threads resolves to 1
  std::unordered_map<std::uint64_t, std::unique_ptr<FileStore>> files_;
  // Ordered by key so range fetches stream the file in order.
  std::unordered_map<std::uint64_t, std::map<std::uint64_t, Bytes>> tables_;
};

}  // namespace fgad::cloud
