#include "cloud/item_store.h"

namespace fgad::cloud {

std::uint32_t ItemStore::alloc(std::uint64_t item_id, Bytes ciphertext,
                               core::NodeId leaf, std::uint64_t plain_size) {
  ct_bytes_ += ciphertext.size();
  plain_bytes_ += plain_size;
  std::uint32_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
  } else {
    slots_.emplace_back();
    slot = static_cast<std::uint32_t>(slots_.size() - 1);
  }
  Record& rec = slots_[slot];
  rec.item_id = item_id;
  rec.ciphertext = std::move(ciphertext);
  rec.leaf = leaf;
  rec.plain_size = plain_size;
  rec.prev = kNoSlot;
  rec.next = kNoSlot;
  rec.live = true;
  by_id_.emplace(item_id, slot);
  ++size_;
  return slot;
}

Result<std::uint32_t> ItemStore::insert_back(std::uint64_t item_id,
                                             Bytes ciphertext,
                                             core::NodeId leaf,
                                             std::uint64_t plain_size) {
  if (by_id_.count(item_id) != 0) {
    return Error(Errc::kInvalidArgument, "item store: duplicate item id");
  }
  const std::uint32_t slot =
      alloc(item_id, std::move(ciphertext), leaf, plain_size);
  Record& rec = slots_[slot];
  rec.prev = tail_;
  if (tail_ != kNoSlot) {
    slots_[tail_].next = slot;
  } else {
    head_ = slot;
  }
  tail_ = slot;
  return slot;
}

Result<std::uint32_t> ItemStore::insert_after(std::uint64_t after_id,
                                              std::uint64_t item_id,
                                              Bytes ciphertext,
                                              core::NodeId leaf,
                                              std::uint64_t plain_size) {
  const auto it = by_id_.find(after_id);
  if (it == by_id_.end()) {
    return Error(Errc::kNotFound, "item store: unknown predecessor id");
  }
  if (by_id_.count(item_id) != 0) {
    return Error(Errc::kInvalidArgument, "item store: duplicate item id");
  }
  const std::uint32_t prev = it->second;
  const std::uint32_t slot =
      alloc(item_id, std::move(ciphertext), leaf, plain_size);
  Record& rec = slots_[slot];
  rec.prev = prev;
  rec.next = slots_[prev].next;
  slots_[prev].next = slot;
  if (rec.next != kNoSlot) {
    slots_[rec.next].prev = slot;
  } else {
    tail_ = slot;
  }
  return slot;
}

Status ItemStore::erase(std::uint32_t slot) {
  if (!valid(slot)) {
    return Status(Errc::kNotFound, "item store: bad slot");
  }
  Record& rec = slots_[slot];
  if (rec.prev != kNoSlot) {
    slots_[rec.prev].next = rec.next;
  } else {
    head_ = rec.next;
  }
  if (rec.next != kNoSlot) {
    slots_[rec.next].prev = rec.prev;
  } else {
    tail_ = rec.prev;
  }
  by_id_.erase(rec.item_id);
  ct_bytes_ -= rec.ciphertext.size();
  plain_bytes_ -= rec.plain_size;
  rec = Record{};
  free_.push_back(slot);
  --size_;
  return Status::ok();
}

std::optional<std::uint32_t> ItemStore::find(std::uint64_t item_id) const {
  const auto it = by_id_.find(item_id);
  if (it == by_id_.end()) {
    return std::nullopt;
  }
  return it->second;
}

std::optional<std::uint32_t> ItemStore::slot_at(std::uint64_t ordinal) const {
  if (ordinal >= size_) {
    return std::nullopt;
  }
  std::uint32_t slot = head_;
  for (std::uint64_t i = 0; i < ordinal; ++i) {
    slot = slots_[slot].next;
  }
  return slot;
}

std::optional<std::uint32_t> ItemStore::slot_at_offset(
    std::uint64_t offset) const {
  if (offset >= plain_bytes_) {
    return std::nullopt;
  }
  std::uint64_t acc = 0;
  for (std::uint32_t slot = head_; slot != kNoSlot; slot = slots_[slot].next) {
    acc += slots_[slot].plain_size;
    if (offset < acc) {
      return slot;
    }
  }
  return std::nullopt;
}

std::vector<std::uint64_t> ItemStore::ids_in_order() const {
  std::vector<std::uint64_t> ids;
  ids.reserve(size_);
  for (std::uint32_t slot = head_; slot != kNoSlot; slot = slots_[slot].next) {
    ids.push_back(slots_[slot].item_id);
  }
  return ids;
}

}  // namespace fgad::cloud
