// Server-side ciphertext storage for one outsourced file.
//
// The paper stores each encrypted item with "a doubly linked list ... to
// keep an order amongst the encrypted data items" and "pointers ... to map
// between the leaf nodes and the corresponding ciphertexts". ItemStore is
// that structure: slot-allocated records forming an intrusive doubly linked
// list (file order), an id -> slot hash map (record-ID addressing), and a
// leaf back-pointer per record that the ModulationTree's balancing moves
// keep up to date.
//
// Ordinal (byte-offset-style) addressing walks the list, matching the
// paper's note that the server "may sequentially scan the encrypted items".
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "core/node_id.h"

namespace fgad::cloud {

class ItemStore {
 public:
  static constexpr std::uint32_t kNoSlot = ~std::uint32_t{0};

  struct Record {
    std::uint64_t item_id = 0;
    Bytes ciphertext;
    core::NodeId leaf = core::kNoNode;
    // Plaintext size, stored alongside the ciphertext so the server can
    // resolve byte-offset addressing with variable item sizes (paper,
    // Section IV-C footnote 2).
    std::uint64_t plain_size = 0;

   private:
    friend class ItemStore;
    std::uint32_t prev = kNoSlot;
    std::uint32_t next = kNoSlot;
    bool live = false;
  };

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Appends a record at the end of the file order. Fails on duplicate id.
  Result<std::uint32_t> insert_back(std::uint64_t item_id, Bytes ciphertext,
                                    core::NodeId leaf,
                                    std::uint64_t plain_size = 0);

  /// Inserts immediately after the record with id `after_id`.
  Result<std::uint32_t> insert_after(std::uint64_t after_id,
                                     std::uint64_t item_id, Bytes ciphertext,
                                     core::NodeId leaf,
                                     std::uint64_t plain_size = 0);

  /// Removes a record by slot; its ciphertext bytes are released.
  Status erase(std::uint32_t slot);

  /// Slot lookup by item id.
  std::optional<std::uint32_t> find(std::uint64_t item_id) const;

  /// Slot lookup by ordinal position (0-based file order); walks the list.
  std::optional<std::uint32_t> slot_at(std::uint64_t ordinal) const;

  /// Slot lookup by plaintext byte offset: scans in file order accumulating
  /// each record's stored plaintext size until the offset falls inside one.
  std::optional<std::uint32_t> slot_at_offset(std::uint64_t offset) const;

  /// Total plaintext bytes across the file (the addressable range).
  std::uint64_t plaintext_bytes() const { return plain_bytes_; }

  bool valid(std::uint32_t slot) const {
    return slot < slots_.size() && slots_[slot].live;
  }
  const Record& at(std::uint32_t slot) const { return slots_[slot]; }

  void set_leaf(std::uint32_t slot, core::NodeId leaf) {
    slots_[slot].leaf = leaf;
  }
  void set_ciphertext(std::uint32_t slot, Bytes ct, std::uint64_t plain_size) {
    ct_bytes_ -= slots_[slot].ciphertext.size();
    ct_bytes_ += ct.size();
    plain_bytes_ -= slots_[slot].plain_size;
    plain_bytes_ += plain_size;
    slots_[slot].ciphertext = std::move(ct);
    slots_[slot].plain_size = plain_size;
  }

  /// First slot in file order (kNoSlot when empty).
  std::uint32_t first() const { return head_; }
  /// Next slot in file order (kNoSlot at the end).
  std::uint32_t next_of(std::uint32_t slot) const { return slots_[slot].next; }

  /// Item ids in file order.
  std::vector<std::uint64_t> ids_in_order() const;

  /// Total stored ciphertext bytes (server-side footprint diagnostics).
  std::uint64_t ciphertext_bytes() const { return ct_bytes_; }

 private:
  std::uint32_t alloc(std::uint64_t item_id, Bytes ciphertext,
                      core::NodeId leaf, std::uint64_t plain_size);

  std::vector<Record> slots_;
  std::vector<std::uint32_t> free_;
  std::unordered_map<std::uint64_t, std::uint32_t> by_id_;
  std::uint32_t head_ = kNoSlot;
  std::uint32_t tail_ = kNoSlot;
  std::size_t size_ = 0;
  std::uint64_t ct_bytes_ = 0;
  std::uint64_t plain_bytes_ = 0;
};

}  // namespace fgad::cloud
