#include "cloud/replica.h"

#include <algorithm>
#include <chrono>

#include "cloud/recovery.h"
#include "obs/flight_recorder.h"
#include "obs/log.h"
#include "obs/trace.h"

namespace fgad::cloud {

namespace {

obs::Counter& ships_counter() {
  static obs::Counter& c =
      obs::Registry::instance().counter("fgad_repl_ships_total");
  return c;
}
obs::Counter& ship_errors_counter() {
  static obs::Counter& c =
      obs::Registry::instance().counter("fgad_repl_ship_errors_total");
  return c;
}
obs::Counter& snapshots_counter() {
  static obs::Counter& c =
      obs::Registry::instance().counter("fgad_repl_snapshots_total");
  return c;
}
obs::Counter& records_counter() {
  static obs::Counter& c =
      obs::Registry::instance().counter("fgad_repl_records_shipped_total");
  return c;
}
obs::Histogram& ship_hist() {
  static obs::Histogram& h =
      obs::Registry::instance().histogram("fgad_repl_ship_ns");
  return h;
}
obs::Gauge& acked_lsn_gauge() {
  static obs::Gauge& g =
      obs::Registry::instance().gauge("fgad_repl_acked_lsn");
  return g;
}

Bytes error_frame(Errc code, std::string msg) {
  proto::ErrorMsg e;
  e.code = code;
  e.message = std::move(msg);
  return e.to_frame();
}

}  // namespace

const char* repl_role_name(ReplRole r) {
  return r == ReplRole::kPrimary ? "primary" : "backup";
}

const char* repl_ack_mode_name(ReplAckMode m) {
  switch (m) {
    case ReplAckMode::kOff:
      return "off";
    case ReplAckMode::kAsync:
      return "async";
    case ReplAckMode::kSync:
      return "sync";
  }
  return "unknown";
}

obs::Gauge& repl_role_gauge() {
  static obs::Gauge& g = obs::Registry::instance().gauge("fgad_repl_role");
  return g;
}
obs::Gauge& repl_term_gauge() {
  static obs::Gauge& g = obs::Registry::instance().gauge("fgad_repl_term");
  return g;
}
obs::Gauge& repl_lag_bytes_gauge() {
  static obs::Gauge& g =
      obs::Registry::instance().gauge("fgad_repl_lag_bytes");
  return g;
}
obs::Gauge& repl_lag_records_gauge() {
  static obs::Gauge& g =
      obs::Registry::instance().gauge("fgad_repl_lag_records");
  return g;
}

// ---- Replicator ------------------------------------------------------------

Replicator::Replicator(Dialer dialer, Options opts)
    : dialer_(std::move(dialer)), opts_(opts) {}

Replicator::~Replicator() {
  stop();
}

void Replicator::set_snapshot_source(SnapshotSource source) {
  snapshot_source_ = std::move(source);
}

void Replicator::set_demote_hook(DemoteHook hook) {
  demote_hook_ = std::move(hook);
}

void Replicator::set_term(std::uint64_t term) {
  std::lock_guard<std::mutex> lock(mu_);
  term_ = std::max(term_, term);
}

void Replicator::start() {
  if (!thread_.joinable()) {
    thread_ = std::thread([this] { loop(); });
  }
}

void Replicator::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) {
      return;
    }
    stop_ = true;
    cv_.notify_all();
    acked_cv_.notify_all();
  }
  if (thread_.joinable()) {
    thread_.join();
  }
  // A donating waiter may still be mid-round-trip on channel_; it clears
  // shipping_ (and notifies) as soon as the trip returns.
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return !shipping_; });
  channel_.reset();
}

void Replicator::stage(std::uint64_t term, std::uint64_t lsn,
                       BytesView request) {
  std::lock_guard<std::mutex> lock(mu_);
  term_ = std::max(term_, term);
  staged_lsn_ = std::max(staged_lsn_, lsn);
  if (stop_ || demoted_) {
    return;
  }
  if (!need_snapshot_ &&
      queue_bytes_ + request.size() > opts_.max_queue_bytes) {
    // Link down (or follower far behind) long enough to fill the queue:
    // drop the log backlog and catch the follower up with a checkpoint
    // ship instead. Records staged after the snapshot's last_lsn still
    // apply on top of it; everything at or below is redundant.
    queue_.clear();
    queue_bytes_ = 0;
    need_snapshot_ = true;
  }
  if (!need_snapshot_) {
    queue_.push_back(
        Staged{term, lsn, Bytes(request.begin(), request.end())});
    queue_bytes_ += request.size();
  }
  repl_lag_bytes_gauge().set(static_cast<std::int64_t>(queue_bytes_));
  repl_lag_records_gauge().set(
      static_cast<std::int64_t>(staged_lsn_ - acked_lsn_));
  cv_.notify_one();
}

Status Replicator::wait_acked(std::uint64_t lsn) {
  std::unique_lock<std::mutex> lock(mu_);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(opts_.sync_timeout_ms);
  // One failed donation disables further attempts until the follower
  // makes progress again — a dead link gets the ship loop's exponential
  // backoff, not a redial per waiter wake-up.
  bool donate = true;
  std::uint64_t progress_mark = acked_lsn_;
  while (acked_lsn_ < lsn) {
    if (demoted_) {
      return Status(Errc::kStaleTerm, "replication: fenced by the follower");
    }
    if (stop_) {
      return Status(Errc::kIoError, "replication: replicator stopped");
    }
    if (donate && !shipping_ && !need_snapshot_ && !queue_.empty()) {
      // Donate this blocked thread as the shipper (see the header): ship
      // the batch ourselves instead of paying two context switches for
      // the ship loop to wake up and do it.
      shipping_ = true;
      lock.unlock();
      const bool ok = ship_batch();
      lock.lock();
      shipping_ = false;
      cv_.notify_all();  // ship loop (or stop()) may be parked on us
      donate = ok;
      continue;
    }
    if (acked_cv_.wait_until(lock, deadline) == std::cv_status::timeout &&
        acked_lsn_ < lsn) {
      return Status(Errc::kTimeout,
                    "replication: follower ack timed out at lsn " +
                        std::to_string(acked_lsn_) + " < " +
                        std::to_string(lsn));
    }
    if (acked_lsn_ > progress_mark) {
      progress_mark = acked_lsn_;
      donate = true;
    }
  }
  return Status::ok();
}

std::uint64_t Replicator::acked_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return acked_lsn_;
}

std::uint64_t Replicator::staged_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return staged_lsn_;
}

std::uint64_t Replicator::pending_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_bytes_;
}

bool Replicator::demoted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return demoted_;
}

void Replicator::fence(std::uint64_t observed_term) {
  DemoteHook hook;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (demoted_) {
      return;
    }
    demoted_ = true;
    queue_.clear();
    queue_bytes_ = 0;
    hook = demote_hook_;
    acked_cv_.notify_all();
  }
  if (hook) {
    hook(observed_term);
  }
}

Result<proto::ReplAck> Replicator::roundtrip(const Bytes& frame) {
  if (!channel_) {
    auto dialed = dialer_();
    if (!dialed) {
      return dialed.error();
    }
    channel_ = std::move(dialed).value();
  }
  auto resp = channel_->roundtrip(frame);
  if (!resp) {
    channel_.reset();  // transport failure: redial (and re-resolve) next try
    return resp.error();
  }
  auto env = proto::open_message(resp.value());
  if (!env) {
    return env.error();
  }
  if (env.value().type == proto::MsgType::kError) {
    proto::Reader r(env.value().payload);
    auto err = proto::ErrorMsg::from(r);
    const Errc code = err ? err.value().code : Errc::kDecodeError;
    if (code == Errc::kStaleTerm) {
      std::uint64_t observed = 0;
      {
        std::lock_guard<std::mutex> lock(mu_);
        observed = term_;
      }
      fence(observed);
    }
    return Error(code, err ? err.value().message : "repl: bad error frame");
  }
  if (env.value().type != proto::MsgType::kReplAck) {
    return Error(Errc::kDecodeError, "repl: unexpected response type");
  }
  proto::Reader r(env.value().payload);
  auto ack = proto::ReplAck::from(r);
  if (!ack) {
    return ack.error();
  }
  return ack;
}

void Replicator::handle_ack(const proto::ReplAck& ack,
                            std::uint64_t shipped_through) {
  bool fenced = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (ack.term > term_) {
      fenced = true;
    } else {
      acked_lsn_ = std::max(acked_lsn_, ack.last_lsn);
      acked_lsn_gauge().set(static_cast<std::int64_t>(acked_lsn_));
      if (ack.code == proto::ReplAck::Code::kNeedSnapshot) {
        need_snapshot_ = true;
      } else if (shipped_through > 0 && ack.last_lsn < shipped_through) {
        // The follower is behind everything we can still ship from the
        // queue (e.g. it restarted from an older image): log shipping
        // cannot converge, fall back to a checkpoint ship.
        need_snapshot_ = true;
      }
      repl_lag_records_gauge().set(
          static_cast<std::int64_t>(staged_lsn_ - acked_lsn_));
      acked_cv_.notify_all();
    }
  }
  if (fenced) {
    fence(ack.term);
  }
}

bool Replicator::ship_batch() {
  proto::ReplAppend req;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty() || need_snapshot_) {
      return true;
    }
    req.term = term_;
    req.prev_lsn = queue_.front().lsn - 1;
    const std::size_t n = std::min(queue_.size(), opts_.max_batch_records);
    req.records.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      req.records.push_back(
          proto::ReplRecord{queue_[i].lsn, queue_[i].request});
    }
  }
  const std::uint64_t shipped_through = req.records.back().lsn;
  const std::uint64_t t0 = obs::now_ns();
  auto ack = roundtrip(req.to_frame());
  ship_hist().observe(obs::now_ns() - t0);
  if (!ack) {
    ship_errors_counter().inc();
    return false;
  }
  ships_counter().inc();
  records_counter().inc(req.records.size());
  obs::FlightRecorder::instance().record(obs::FrEvent::kReplShip, 0,
                                         req.records.size(),
                                         ack.value().last_lsn);
  {
    // Drop everything the batch covered (stage() only ever appends, so
    // the front of the queue is still exactly what we shipped).
    std::lock_guard<std::mutex> lock(mu_);
    while (!queue_.empty() && queue_.front().lsn <= shipped_through) {
      queue_bytes_ -= queue_.front().request.size();
      queue_.pop_front();
    }
    repl_lag_bytes_gauge().set(static_cast<std::int64_t>(queue_bytes_));
  }
  handle_ack(ack.value(), shipped_through);
  return true;
}

bool Replicator::ship_snapshot() {
  if (!snapshot_source_) {
    return true;
  }
  auto snap = snapshot_source_();
  if (!snap) {
    ship_errors_counter().inc();
    return false;
  }
  const std::uint64_t snap_lsn = snap.value().last_lsn;
  const std::uint64_t image_bytes = snap.value().image.size();
  const std::uint64_t t0 = obs::now_ns();
  auto ack = roundtrip(snap.value().to_frame());
  ship_hist().observe(obs::now_ns() - t0);
  if (!ack) {
    ship_errors_counter().inc();
    return false;
  }
  snapshots_counter().inc();
  obs::FlightRecorder::instance().record(obs::FrEvent::kReplSnapshotShip, 0,
                                         image_bytes, snap_lsn);
  obs::Logger::instance().log(obs::Level::kInfo, "repl_snapshot_shipped",
                              obs::Kv()
                                  .u64("last_lsn", snap_lsn)
                                  .u64("image_bytes", image_bytes));
  {
    std::lock_guard<std::mutex> lock(mu_);
    need_snapshot_ = false;
    // Records the image already covers are redundant now.
    while (!queue_.empty() && queue_.front().lsn <= snap_lsn) {
      queue_bytes_ -= queue_.front().request.size();
      queue_.pop_front();
    }
    repl_lag_bytes_gauge().set(static_cast<std::int64_t>(queue_bytes_));
  }
  handle_ack(ack.value(), 0);
  return true;
}

void Replicator::loop() {
  int backoff_ms = opts_.redial_backoff_ms;
  auto last_contact = std::chrono::steady_clock::now();
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    const auto heartbeat_due =
        last_contact + std::chrono::milliseconds(opts_.heartbeat_ms);
    cv_.wait_until(lock, heartbeat_due, [&] {
      return stop_ ||
             (!shipping_ && !demoted_ && (!queue_.empty() || need_snapshot_));
    });
    if (stop_) {
      break;
    }
    if (shipping_) {
      // A sync-mode waiter is mid-donation and owns channel_; park until
      // it finishes. Its round trip counts as follower contact.
      cv_.wait(lock, [&] { return stop_ || !shipping_; });
      if (stop_) {
        break;
      }
      last_contact = std::chrono::steady_clock::now();
      continue;
    }
    if (demoted_) {
      // Fenced: nothing to ship ever again; park until stop().
      cv_.wait(lock, [&] { return stop_; });
      break;
    }
    const bool snapshot = need_snapshot_;
    const bool have_records = !queue_.empty();
    const bool heartbeat =
        !snapshot && !have_records &&
        std::chrono::steady_clock::now() >= heartbeat_due;
    std::uint64_t hb_term = term_;
    std::uint64_t hb_lsn = staged_lsn_;
    shipping_ = true;  // claim channel_ until we relock below
    lock.unlock();

    bool ok = true;
    if (snapshot) {
      ok = ship_snapshot();
    } else if (have_records) {
      ok = ship_batch();
    } else if (heartbeat) {
      proto::ReplHeartbeat hb;
      hb.term = hb_term;
      hb.last_lsn = hb_lsn;
      auto ack = roundtrip(hb.to_frame());
      if (ack) {
        handle_ack(ack.value(), hb_lsn);
      } else {
        ship_errors_counter().inc();
        ok = false;
      }
    }
    if (ok) {
      backoff_ms = opts_.redial_backoff_ms;
      last_contact = std::chrono::steady_clock::now();
    } else {
      // Transport trouble: back off before hammering the follower.
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      backoff_ms = std::min(backoff_ms * 2, opts_.max_backoff_ms);
      last_contact = std::chrono::steady_clock::now();
    }
    lock.lock();
    shipping_ = false;
  }
}

// ---- DurableServer replication hooks ---------------------------------------
//
// These DurableServer members live here (not recovery.cpp) so the whole
// replication protocol — both the primary-side shipper above and the
// follower-side apply path — reads as one unit.

void DurableServer::attach_replicator(std::shared_ptr<Replicator> repl,
                                      ReplAckMode mode) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    repl_ = repl;
    repl_mode_ = mode;
    repl->set_term(term_);
  }
  repl->set_snapshot_source([this] { return snapshot_for_ship(); });
  repl->set_demote_hook([this](std::uint64_t observed) { demote(observed); });
  if (mode == ReplAckMode::kSync) {
    committer_.set_gate(
        [repl](std::uint64_t max_lsn) { return repl->wait_acked(max_lsn); });
  }
  repl->start();
}

void DurableServer::set_role_locked(ReplRole role, std::uint64_t term) {
  role_.store(role, std::memory_order_release);
  term_ = term;
  repl_role_gauge().set(role == ReplRole::kPrimary ? 1 : 0);
  repl_term_gauge().set(static_cast<std::int64_t>(term_));
  obs::FlightRecorder::instance().record(
      obs::FrEvent::kReplRoleChange, 0,
      role_ == ReplRole::kPrimary ? 1 : 0, term_);
  obs::Logger::instance().log(obs::Level::kInfo, "repl_role",
                              obs::Kv()
                                  .str("role", repl_role_name(role_))
                                  .u64("term", term_));
}

Status DurableServer::promote() {
  std::lock_guard<std::mutex> lock(mu_);
  if (role_ == ReplRole::kPrimary) {
    return Status::ok();
  }
  set_role_locked(ReplRole::kPrimary, term_ + 1);
  // The bumped term must be durable BEFORE the first client ack: were it
  // not, a crash-restart could come back with the old term and accept
  // appends from the node this promotion is fencing off.
  if (auto st = checkpoint_locked(); !st) {
    set_role_locked(ReplRole::kBackup, term_ - 1);
    return st;
  }
  return Status::ok();
}

void DurableServer::demote(std::uint64_t observed_term) {
  std::lock_guard<std::mutex> lock(mu_);
  if (role_ == ReplRole::kBackup && observed_term <= term_) {
    return;
  }
  set_role_locked(ReplRole::kBackup, std::max(term_, observed_term));
}

ReplRole DurableServer::role() const {
  return role_.load(std::memory_order_acquire);
}

std::uint64_t DurableServer::term() const {
  std::lock_guard<std::mutex> lock(mu_);
  return term_;
}

Result<proto::ReplSnapshot> DurableServer::snapshot_for_ship() {
  std::lock_guard<std::mutex> lock(mu_);
  proto::ReplSnapshot snap;
  snap.term = term_;
  snap.last_lsn = next_lsn_ - 1;
  proto::Writer image;
  server_->save(image);
  snap.image = std::move(image).take();
  proto::Writer dedup;
  dedup_.serialize(dedup);
  snap.dedup = std::move(dedup).take();
  return snap;
}

std::optional<Bytes> DurableServer::fence_check_locked(
    std::uint64_t sender_term) {
  if (sender_term < term_) {
    return error_frame(Errc::kStaleTerm,
                       "term " + std::to_string(sender_term) + " < " +
                           std::to_string(term_));
  }
  if (role_ == ReplRole::kPrimary) {
    if (sender_term == term_) {
      // Two primaries on the same term cannot happen through promote()
      // (it bumps); refuse rather than guess.
      return error_frame(Errc::kStaleTerm,
                         "split brain: both primaries at term " +
                             std::to_string(term_));
    }
    // A newer-term primary exists: we are the stale one. Step down and
    // apply its stream.
    set_role_locked(ReplRole::kBackup, sender_term);
  } else if (sender_term > term_) {
    set_role_locked(ReplRole::kBackup, sender_term);
  }
  return std::nullopt;
}

Bytes DurableServer::handle_repl(BytesView request) {
  auto env = proto::open_message(request);
  if (!env) {
    return error_frame(Errc::kDecodeError, "repl: bad frame");
  }
  proto::Reader r(env.value().payload);
  switch (env.value().type) {
    case proto::MsgType::kReplAppend: {
      auto req = proto::ReplAppend::from(r);
      if (!req) {
        return error_frame(req.error().code, req.error().message);
      }
      return handle_repl_append(req.value());
    }
    case proto::MsgType::kReplSnapshot: {
      auto req = proto::ReplSnapshot::from(r);
      if (!req) {
        return error_frame(req.error().code, req.error().message);
      }
      return handle_repl_snapshot(req.value());
    }
    case proto::MsgType::kReplHeartbeat: {
      auto req = proto::ReplHeartbeat::from(r);
      if (!req) {
        return error_frame(req.error().code, req.error().message);
      }
      return handle_repl_heartbeat(req.value());
    }
    default:
      return error_frame(Errc::kUnsupported, "repl: not a repl message");
  }
}

Bytes DurableServer::handle_repl_append(const proto::ReplAppend& req) {
  std::lock_guard<std::mutex> lock(mu_);
  if (auto rejected = fence_check_locked(req.term)) {
    return *rejected;
  }
  const std::uint64_t last = next_lsn_ - 1;
  proto::ReplAck ack;
  ack.term = term_;
  if (req.prev_lsn > last) {
    // Hole between our log and the stream: only a checkpoint ship can
    // bridge it.
    ack.last_lsn = last;
    ack.code = proto::ReplAck::Code::kNeedSnapshot;
    return ack.to_frame();
  }
  for (const proto::ReplRecord& rec : req.records) {
    if (rec.lsn < next_lsn_) {
      continue;  // re-shipped overlap (idempotent)
    }
    if (rec.lsn != next_lsn_) {
      ack.last_lsn = next_lsn_ - 1;
      ack.code = proto::ReplAck::Code::kNeedSnapshot;
      return ack.to_frame();
    }
    if (wal_) {
      auto t = wal_->append(rec.lsn, rec.request, /*defer_sync=*/true);
      if (!t) {
        return error_frame(Errc::kIoError,
                           "repl wal append: " + t.error().message);
      }
    }
    const auto tag = proto::open_tagged(rec.request);
    const std::uint64_t rid = tag ? tag->request_id : 0;
    // The backup's apply becomes its own trace segment under the client's
    // rid, parented on the wire-carried span id, so the primary's
    // stitched GET /trace.json?rid= shows the replication hop
    // (DESIGN.md §19). The shipped frame is applied verbatim — never
    // rewritten — so the dedup table stays byte-identical with the
    // primary's.
    const bool capture = rid != 0 &&
                         obs::TraceStore::instance().capture_enabled() &&
                         !obs::trace_active();
    if (capture) {
      obs::trace_begin(rid, tag->span_id);
    }
    Bytes resp;
    {
      obs::Span repl_span("repl_apply");
      obs::AuditLog::set_commit_context(term_, rec.lsn);
      resp = server_->handle(rec.request);
      obs::AuditLog::clear_commit_context();
    }
    if (capture) {
      obs::TraceStore::instance().put(rid, obs::trace_render_chrome_json());
      obs::trace_stop();
    }
    dedup_.put(rid, std::move(resp));
    next_lsn_ = rec.lsn + 1;
    ++mutations_since_checkpoint_;
  }
  // One fsync covers the whole shipped batch — the follower mirrors the
  // primary's group-commit discipline.
  if (wal_) {
    if (auto st = wal_->sync_now(); !st) {
      return error_frame(Errc::kIoError, "repl wal sync: " + st.to_string());
    }
  }
  if (opts_.checkpoint_every_n > 0 &&
      mutations_since_checkpoint_ >= opts_.checkpoint_every_n) {
    (void)checkpoint_locked();  // failure keeps appending to the old log
  }
  ack.last_lsn = next_lsn_ - 1;
  ack.code = proto::ReplAck::Code::kOk;
  return ack.to_frame();
}

Bytes DurableServer::handle_repl_snapshot(const proto::ReplSnapshot& req) {
  std::lock_guard<std::mutex> lock(mu_);
  if (auto rejected = fence_check_locked(req.term)) {
    return *rejected;
  }
  proto::Reader ir(req.image);
  auto server = CloudServer::load(ir, opts_.server);
  if (!server || !ir.finish()) {
    return error_frame(Errc::kDecodeError, "repl snapshot: bad image");
  }
  RidDedup dedup(opts_.dedup_capacity);
  proto::Reader dr(req.dedup);
  if (auto st = dedup.deserialize(dr); !st) {
    return error_frame(Errc::kDecodeError, "repl snapshot: bad dedup table");
  }
  if (auto st = fsck(*server.value()); !st) {
    return error_frame(st.error().code,
                       "repl snapshot: " + st.error().message);
  }
  server_ = std::move(server).value();
  dedup_ = std::move(dedup);
  next_lsn_ = req.last_lsn + 1;
  mutations_since_checkpoint_ = 0;
  // Persist the installed image immediately: a crash after this ack must
  // recover to (at least) the shipped state, or the primary would see our
  // acked lsn regress.
  if (auto st = checkpoint_locked(); !st) {
    return error_frame(st.error().code,
                       "repl snapshot checkpoint: " + st.error().message);
  }
  obs::Logger::instance().log(obs::Level::kInfo, "repl_snapshot_installed",
                              obs::Kv()
                                  .u64("last_lsn", req.last_lsn)
                                  .u64("term", term_));
  proto::ReplAck ack;
  ack.term = term_;
  ack.last_lsn = next_lsn_ - 1;
  return ack.to_frame();
}

Bytes DurableServer::handle_repl_heartbeat(const proto::ReplHeartbeat& req) {
  std::lock_guard<std::mutex> lock(mu_);
  if (auto rejected = fence_check_locked(req.term)) {
    return *rejected;
  }
  proto::ReplAck ack;
  ack.term = term_;
  ack.last_lsn = next_lsn_ - 1;
  return ack.to_frame();
}

}  // namespace fgad::cloud
