#include "cloud/file_store.h"

#include <algorithm>
#include <unordered_map>

namespace fgad::cloud {

using core::NodeId;

Status FileStore::ingest(core::ModulationTree tree,
                         std::vector<IngestItem> items) {
  if (!items_.empty() || !tree_.empty()) {
    return Status(Errc::kInvalidArgument, "file store: already populated");
  }
  if (tree.leaf_count() != items.size()) {
    return Status(Errc::kInvalidArgument,
                  "file store: leaf/item count mismatch");
  }
  for (std::size_t i = 0; i < items.size(); ++i) {
    // Fresh store: slots are handed out sequentially, so slot i holds item
    // i, which is exactly what the outsourced tree's leaves reference.
    auto slot =
        items_.insert_back(items[i].item_id, std::move(items[i].ciphertext),
                           core::kNoNode, items[i].plain_size);
    if (!slot) {
      return slot.status();
    }
    if (slot.value() != i) {
      return Status(Errc::kInvalidArgument, "file store: non-sequential slot");
    }
  }
  tree_ = std::move(tree);
  // Wire up the leaf back-pointers.
  const std::size_t n = tree_.leaf_count();
  for (NodeId v = (n == 0 ? 0 : n - 1); v < tree_.node_count(); ++v) {
    if (tree_.is_leaf(v)) {
      items_.set_leaf(static_cast<std::uint32_t>(tree_.item_slot(v)), v);
    }
  }
  integrity_rebuild();
  return Status::ok();
}

void FileStore::integrity_rebuild() {
  if (!integrity_) {
    return;
  }
  const std::size_t n = tree_.leaf_count();
  std::vector<crypto::Md> hashes(n);
  const auto hash_range = [&](std::size_t begin, std::size_t end,
                              std::size_t /*worker*/) {
    crypto::Hasher hasher(tree_.alg());  // EVP ctx: one per worker
    for (std::size_t i = begin; i < end; ++i) {
      const NodeId leaf = (n - 1) + i;
      const auto& rec =
          items_.at(static_cast<std::uint32_t>(tree_.item_slot(leaf)));
      hashes[i] = integrity::leaf_hash(hasher, rec.item_id, rec.ciphertext);
    }
  };
  // The leaf hashing dominates bulk ingest/reload; fan it out when the
  // server has a pool. The internal-node build stays sequential (it is a
  // single linear pass over already-computed digests).
  if (pool_ != nullptr && n >= 1024) {
    pool_->parallel_for(n, /*grain=*/128, hash_range);
  } else {
    hash_range(0, n, 0);
  }
  integrity_->build(hashes);
}

void FileStore::integrity_refresh_leaf(std::uint32_t slot) {
  if (!integrity_) {
    return;
  }
  const ItemStore::Record& rec = items_.at(slot);
  crypto::Hasher hasher(tree_.alg());
  integrity_->set_leaf(
      rec.leaf, integrity::leaf_hash(hasher, rec.item_id, rec.ciphertext));
}

crypto::Md FileStore::integrity_root() const {
  if (!integrity_) {
    return crypto::Md::zero(crypto::digest_size(tree_.alg()));
  }
  return integrity_->root();
}

Result<proto::AuditResp::Entry> FileStore::audit_entry(
    std::uint32_t slot, bool include_ciphertext) const {
  if (!integrity_) {
    return Error(Errc::kUnsupported, "file store: integrity disabled");
  }
  if (!items_.valid(slot)) {
    return Error(Errc::kNotFound, "file store: bad slot");
  }
  const ItemStore::Record& rec = items_.at(slot);
  proto::AuditResp::Entry e;
  e.item_id = rec.item_id;
  e.leaf = rec.leaf;
  e.has_ciphertext = include_ciphertext;
  if (include_ciphertext) {
    e.ciphertext = rec.ciphertext;
  }
  e.leaf_hash = integrity_->node_hash(rec.leaf);
  e.siblings = integrity_->prove(rec.leaf).siblings;
  return e;
}

Result<std::uint32_t> FileStore::resolve(const proto::ItemRef& ref) const {
  std::optional<std::uint32_t> slot;
  switch (ref.kind) {
    case proto::RefKind::kId:
      slot = items_.find(ref.value);
      break;
    case proto::RefKind::kOrdinal:
      slot = items_.slot_at(ref.value);
      break;
    case proto::RefKind::kByteOffset:
      slot = items_.slot_at_offset(ref.value);
      break;
  }
  if (!slot) {
    return Error(Errc::kNotFound, "file store: no such item");
  }
  return *slot;
}

Result<core::AccessInfo> FileStore::access(std::uint32_t slot) const {
  if (!items_.valid(slot)) {
    return Error(Errc::kNotFound, "file store: bad slot");
  }
  const ItemStore::Record& rec = items_.at(slot);
  core::AccessInfo info;
  info.path = tree_.path_to(rec.leaf);
  info.leaf_mod = tree_.leaf_mod(rec.leaf);
  info.item_id = rec.item_id;
  info.ciphertext = rec.ciphertext;
  return info;
}

Status FileStore::modify(std::uint64_t item_id, Bytes ciphertext,
                         std::uint64_t plain_size) {
  const auto slot = items_.find(item_id);
  if (!slot) {
    return Status(Errc::kNotFound, "file store: no such item");
  }
  items_.set_ciphertext(*slot, std::move(ciphertext), plain_size);
  integrity_refresh_leaf(*slot);
  return Status::ok();
}

Result<core::DeleteInfo> FileStore::delete_begin(std::uint32_t slot) const {
  if (!items_.valid(slot)) {
    return Error(Errc::kNotFound, "file store: bad slot");
  }
  const ItemStore::Record& rec = items_.at(slot);
  core::DeleteInfo info = tree_.delete_info_for(rec.leaf);
  info.item_id = rec.item_id;
  info.ciphertext = rec.ciphertext;
  return info;
}

Status FileStore::delete_commit(const core::DeleteCommit& commit) {
  const NodeId deleted_leaf = commit.leaf;
  auto outcome = tree_.apply_delete(commit);
  if (!outcome) {
    return outcome.status();
  }
  if (integrity_) {
    integrity_->delete_leaf(deleted_leaf);
  }
  if (auto st = items_.erase(
          static_cast<std::uint32_t>(outcome.value().removed_item_slot));
      !st) {
    return st;
  }
  for (const auto& move : outcome.value().moves) {
    items_.set_leaf(static_cast<std::uint32_t>(move.item_slot), move.new_leaf);
  }
  return Status::ok();
}

Result<core::DeleteManyInfo> FileStore::delete_many_begin(
    std::span<const std::uint32_t> slots) const {
  if (slots.empty()) {
    return Error(Errc::kInvalidArgument, "file store: no deletion targets");
  }
  std::vector<std::pair<NodeId, std::uint32_t>> by_leaf;
  by_leaf.reserve(slots.size());
  for (std::uint32_t slot : slots) {
    if (!items_.valid(slot)) {
      return Error(Errc::kNotFound, "file store: bad slot");
    }
    by_leaf.emplace_back(items_.at(slot).leaf, slot);
  }
  std::sort(by_leaf.begin(), by_leaf.end());
  std::vector<NodeId> leaves;
  leaves.reserve(by_leaf.size());
  for (std::size_t i = 0; i < by_leaf.size(); ++i) {
    if (i > 0 && by_leaf[i].first == by_leaf[i - 1].first) {
      return Error(Errc::kInvalidArgument,
                   "file store: duplicate deletion target");
    }
    leaves.push_back(by_leaf[i].first);
  }
  core::DeleteManyInfo info = tree_.delete_many_info_for(leaves, pool_);
  for (std::size_t i = 0; i < by_leaf.size(); ++i) {
    const ItemStore::Record& rec = items_.at(by_leaf[i].second);
    info.targets[i].item_id = rec.item_id;
    info.targets[i].ciphertext = rec.ciphertext;
  }
  return info;
}

Status FileStore::delete_many_commit(const core::DeleteManyCommit& commit) {
  auto outcome = tree_.apply_delete_many(commit);
  if (!outcome) {
    return outcome.status();
  }
  const core::ModulationTree::DeleteManyOutcome& out = outcome.value();
  if (integrity_) {
    // The old hash tree is still intact: every surviving leaf's hash lives
    // at its pre-deletion node (its own id if it stayed in place, or the
    // relocation source). Rebuilding from those digests is O(n') internal
    // hashing with zero ciphertext re-hashing.
    const std::size_t n2 = tree_.leaf_count();
    std::unordered_map<NodeId, NodeId> source;  // new node -> old node
    source.reserve(out.leaf_relocations.size());
    for (const auto& rl : out.leaf_relocations) {
      source.emplace(rl.to, rl.from);
    }
    std::vector<crypto::Md> hashes(n2);
    for (std::size_t i = 0; i < n2; ++i) {
      const NodeId v = static_cast<NodeId>((n2 - 1) + i);
      const auto it = source.find(v);
      hashes[i] = integrity_->node_hash(it == source.end() ? v : it->second);
    }
    integrity_->build(hashes);
  }
  for (std::uint64_t slot : out.removed_item_slots) {
    if (auto st = items_.erase(static_cast<std::uint32_t>(slot)); !st) {
      return st;
    }
  }
  for (const auto& move : out.moves) {
    items_.set_leaf(static_cast<std::uint32_t>(move.item_slot), move.new_leaf);
  }
  return Status::ok();
}

Status FileStore::insert_commit(const core::InsertCommit& commit) {
  // Store the ciphertext first to obtain the slot the new leaf will point
  // to; roll back if the tree rejects the commit (e.g. duplicate modulator).
  Result<std::uint32_t> slot =
      commit.after_item_id == core::InsertCommit::kAppend
          ? items_.insert_back(commit.item_id, commit.ciphertext,
                               core::kNoNode, commit.plain_size)
          : items_.insert_after(commit.after_item_id, commit.item_id,
                                commit.ciphertext, core::kNoNode,
                                commit.plain_size);
  if (!slot) {
    return slot.status();
  }
  auto outcome = tree_.apply_insert(commit, slot.value());
  if (!outcome) {
    (void)items_.erase(slot.value());
    return outcome.status();
  }
  if (integrity_) {
    crypto::Hasher hasher(tree_.alg());
    integrity_->append_pair(
        integrity::leaf_hash(hasher, commit.item_id, commit.ciphertext));
  }
  items_.set_leaf(slot.value(), outcome.value().new_leaf);
  for (const auto& move : outcome.value().moves) {
    items_.set_leaf(static_cast<std::uint32_t>(move.item_slot), move.new_leaf);
  }
  return Status::ok();
}

Bytes FileStore::serialized_tree() const {
  proto::Writer w;
  tree_.serialize(w);
  return std::move(w).take();
}

void FileStore::serialize(proto::Writer& w) const {
  // Canonical image: the tree's leaf->slot pointers are rewritten to the
  // file-order positions deserialize() will reassign, so the serialized
  // form is independent of how the live slot layout fragmented across
  // deletions. The durable checkpoint path relies on save(load(save(x)))
  // being byte-identical to save(x) (DESIGN.md §13).
  std::unordered_map<std::uint64_t, std::uint64_t> canonical_slot;
  canonical_slot.reserve(items_.size());
  std::uint64_t position = 0;
  for (std::uint32_t slot = items_.first(); slot != ItemStore::kNoSlot;
       slot = items_.next_of(slot)) {
    canonical_slot.emplace(slot, position++);
  }
  tree_.serialize(
      w, [&](std::uint64_t slot) { return canonical_slot.at(slot); });
  w.u64(items_.size());
  for (std::uint32_t slot = items_.first(); slot != ItemStore::kNoSlot;
       slot = items_.next_of(slot)) {
    const ItemStore::Record& rec = items_.at(slot);
    w.u64(rec.item_id);
    w.u64(rec.leaf);
    w.u64(rec.plain_size);
    w.bytes(rec.ciphertext);
  }
}

Result<FileStore> FileStore::deserialize(proto::Reader& r,
                                         bool track_duplicates,
                                         bool enable_integrity,
                                         ThreadPool* pool) {
  auto tree = core::ModulationTree::deserialize(
      r, core::ModulationTree::Config{crypto::HashAlg::kSha1,
                                      track_duplicates});
  if (!tree) {
    return tree.error();
  }
  FileStore store(tree.value().alg(), track_duplicates, enable_integrity,
                  pool);
  store.tree_ = std::move(tree).value();
  const std::uint64_t n = r.u64();
  if (!r.ok() || n != store.tree_.leaf_count()) {
    return Error(Errc::kDecodeError, "file store: item count mismatch");
  }
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t id = r.u64();
    const NodeId leaf = r.u64();
    const std::uint64_t plain_size = r.u64();
    Bytes ct = r.bytes();
    if (!r.ok()) {
      return Error(Errc::kDecodeError, "file store: truncated items");
    }
    if (!store.tree_.is_leaf(leaf)) {
      return Error(Errc::kDecodeError, "file store: bad leaf reference");
    }
    auto slot = store.items_.insert_back(id, std::move(ct), leaf, plain_size);
    if (!slot) {
      return slot.error();
    }
    // Slots are renumbered on load; refresh the tree-side pointer.
    store.tree_.set_item_slot(leaf, slot.value());
  }
  store.integrity_rebuild();
  return store;
}

}  // namespace fgad::cloud
