// Primary–backup WAL replication (DESIGN.md §18).
//
// The primary streams every WAL record to one follower over the normal
// wire protocol (proto::ReplAppend / ReplSnapshot / ReplHeartbeat, each
// answered by a ReplAck). Records are staged into the Replicator at WAL
// append time — under the same lock that orders the append, so the
// replication stream sees the exact LSN order of the log — and a
// dedicated ship thread batches whatever accumulated, mirroring the
// GroupCommitter's natural batching: the network round trip to the
// follower runs in parallel with the local fsync, and in `sync` ack mode
// the group-commit flush gates client ACKs on the follower's durable ack.
//
// Split-brain fencing: every replication message carries a monotonic
// term, persisted in checkpoints. A promoted backup bumps its term (and
// checkpoints immediately, making the bump durable); the demoted
// primary's next append is rejected with kStaleTerm, at which point it
// demotes itself and starts answering clients with kNotPrimary so the
// failover channel re-routes them.
//
// Catch-up: when log shipping cannot bridge the follower's position
// (fresh follower, lost disk, or the primary's bounded ship queue
// overflowed while the link was down), the primary ships a full
// checkpoint image (ReplSnapshot) and resumes appends on top of it.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>

#include "common/bytes.h"
#include "common/result.h"
#include "net/transport.h"
#include "obs/metrics.h"
#include "proto/messages.h"

namespace fgad::cloud {

enum class ReplRole : std::uint8_t { kBackup = 0, kPrimary = 1 };
enum class ReplAckMode : std::uint8_t { kOff = 0, kAsync = 1, kSync = 2 };

const char* repl_role_name(ReplRole r);
const char* repl_ack_mode_name(ReplAckMode m);

// Shared gauges: set by DurableServer (role/term) and the Replicator
// (lag); read by /readyz and fgad_top.
obs::Gauge& repl_role_gauge();
obs::Gauge& repl_term_gauge();
obs::Gauge& repl_lag_bytes_gauge();
obs::Gauge& repl_lag_records_gauge();

/// Primary-side WAL shipper. Owns the connection to the follower and a
/// bounded queue of staged records; a single ship thread drains the
/// queue in batches, sends heartbeats when idle, and falls back to
/// checkpoint shipping when the follower reports a gap.
class Replicator {
 public:
  /// Produces a fresh channel to the follower (invoked on every
  /// (re)connect, so the follower's address is re-resolved each time).
  using Dialer = std::function<Result<std::unique_ptr<net::RpcChannel>>()>;
  /// Builds a consistent checkpoint image for catch-up (locks the
  /// durable server; the snapshot's last_lsn fences which queued
  /// records become redundant).
  using SnapshotSource = std::function<Result<proto::ReplSnapshot>()>;
  /// Invoked once when the follower fences us off (kStaleTerm): the
  /// durable server demotes itself and starts refusing client traffic.
  using DemoteHook = std::function<void(std::uint64_t observed_term)>;

  struct Options {
    ReplAckMode mode = ReplAckMode::kAsync;
    int heartbeat_ms = 500;       // idle heartbeat cadence
    int sync_timeout_ms = 5000;   // wait_acked() bound (sync ack mode)
    int redial_backoff_ms = 50;   // doubles up to max_backoff_ms
    int max_backoff_ms = 1000;
    std::size_t max_batch_records = 256;
    // Staged-but-unshipped bytes past this drop the queue and force a
    // snapshot ship instead (bounds memory while the link is down).
    std::size_t max_queue_bytes = 64ull * 1024 * 1024;
  };

  Replicator(Dialer dialer, Options opts);
  ~Replicator();
  Replicator(const Replicator&) = delete;
  Replicator& operator=(const Replicator&) = delete;

  /// Wiring; must be called before start().
  void set_snapshot_source(SnapshotSource source);
  void set_demote_hook(DemoteHook hook);
  void set_term(std::uint64_t term);

  void start();
  void stop();

  /// Stages one appended WAL record for shipping. Called under the
  /// DurableServer dispatch lock, so LSNs arrive strictly increasing.
  void stage(std::uint64_t term, std::uint64_t lsn, BytesView request);

  /// Blocks until the follower has durably acknowledged `lsn` (the sync
  /// ack-mode gate). Fails with kTimeout after sync_timeout_ms, with
  /// kStaleTerm once fenced, and with kIoError after stop().
  ///
  /// Flat-combining fast path: a waiter that would otherwise park
  /// donates itself as the shipper when nobody else is mid-ship,
  /// performing the follower round trip on its own thread. This saves
  /// two context switches per synchronous commit (client -> ship thread
  /// -> client), which on few-core hosts is the difference between the
  /// round trip overlapping the local fsync and serializing behind a
  /// scheduler ping-pong.
  Status wait_acked(std::uint64_t lsn);

  std::uint64_t acked_lsn() const;
  std::uint64_t staged_lsn() const;
  std::uint64_t pending_bytes() const;
  bool demoted() const;
  const Options& options() const { return opts_; }

 private:
  struct Staged {
    std::uint64_t term = 0;
    std::uint64_t lsn = 0;
    Bytes request;
  };

  void loop();
  /// One connected round trip; resets the channel on transport failure
  /// and flips demoted_ on a kStaleTerm rejection.
  Result<proto::ReplAck> roundtrip(const Bytes& frame);
  bool ship_batch();     // returns false when the loop should back off
  bool ship_snapshot();  // same
  void handle_ack(const proto::ReplAck& ack, std::uint64_t shipped_through);
  void fence(std::uint64_t observed_term);

  Dialer dialer_;
  Options opts_;
  SnapshotSource snapshot_source_;
  DemoteHook demote_hook_;

  // Owned by whichever thread holds shipping_ (the ship loop, or a
  // sync-mode waiter donating its blocked time to perform the ship).
  std::unique_ptr<net::RpcChannel> channel_;

  mutable std::mutex mu_;
  std::condition_variable cv_;        // wakes the ship thread
  std::condition_variable acked_cv_;  // wakes wait_acked callers
  std::deque<Staged> queue_;
  std::uint64_t term_ = 0;
  std::uint64_t staged_lsn_ = 0;   // highest lsn ever staged
  std::uint64_t acked_lsn_ = 0;    // follower's durable high-water mark
  std::uint64_t queue_bytes_ = 0;  // payload bytes currently queued
  bool need_snapshot_ = false;
  bool demoted_ = false;
  bool shipping_ = false;  // some thread is mid-round-trip on channel_
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace fgad::cloud
