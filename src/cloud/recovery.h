// Crash-consistent hosting of a CloudServer: checkpoints + WAL replay +
// rid-keyed exactly-once semantics (DESIGN.md §13).
//
// DurableServer wraps CloudServer::handle with the durability discipline
// the paper's assured-deletion guarantee needs to survive ungraceful
// shutdowns: a mutation is WAL-logged and fsynced before it is
// acknowledged, the full server image is checkpointed atomically every N
// mutations (temp -> fsync -> rename -> fsync dir), and startup recovers
// by loading the newest valid checkpoint and replaying the WAL tail.
//
// Exactly-once: a mutating request that arrives in a tagged envelope
// (proto::kTaggedEnvelope) is deduplicated by its request id. The dedup
// table — a bounded FIFO of (rid -> response) — is persisted in every
// checkpoint and rebuilt by WAL replay, so a client that resends a
// mutation after a timeout, a connection reset, *or a server crash* gets
// the original response back instead of double-folding deletion deltas.
// This is what lets proto::retryable_request approve tagged mutations for
// net::RetryChannel.
//
// State directory layout:
//   checkpoint-<epoch>.ckpt   atomic snapshots (newest valid one wins)
//   wal-<epoch>.log           records logged on top of checkpoint <epoch>
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cloud/replica.h"
#include "cloud/server.h"
#include "cloud/wal.h"

namespace fgad::cloud {

/// Bounded FIFO map: request id -> the response produced the first time
/// the mutation was applied. Deterministic (insertion-ordered eviction)
/// so checkpoint images stay byte-identical across re-executions.
class RidDedup {
 public:
  explicit RidDedup(std::size_t capacity = 4096) : capacity_(capacity) {}

  /// The cached response for `rid`, or nullptr.
  const Bytes* find(std::uint64_t rid) const;
  /// Records a response; evicts the oldest entry past capacity. rid 0
  /// (untagged) is never stored.
  void put(std::uint64_t rid, Bytes response);

  std::size_t size() const { return order_.size(); }

  void serialize(proto::Writer& w) const;
  Status deserialize(proto::Reader& r);

 private:
  std::size_t capacity_;
  std::deque<std::uint64_t> order_;
  std::unordered_map<std::uint64_t, Bytes> by_rid_;
};

/// Invariant verifier run after every recovery (and on demand): left-
/// complete tree shape, item <-> leaf linkage in both directions, and a
/// from-scratch recomputation of each file's integrity root.
Status fsck(const CloudServer& server);

/// Cross-connection WAL group commit (DESIGN.md §15).
///
/// Mutation handlers stage their WAL append (Wal::append with
/// defer_sync) and park the pending acknowledgement here as a commit
/// ticket + release callback. The committer thread swaps out the whole
/// stage, performs ONE fsync covering its highest ticket (Wal::sync_to),
/// and releases every parked response in one wake — so one disk flush
/// amortizes over however many mutations arrived while the previous
/// flush was in progress. Batching is natural, not timed: an idle server
/// still gets fsync-per-mutation latency, a loaded one gets batches.
class GroupCommitter {
 public:
  /// Invoked exactly once per enqueue, after the entry's bytes are
  /// durable (or with the fsync error). May run on the committer thread
  /// or inline in enqueue() after shutdown.
  using Release = std::function<void(Status)>;

  GroupCommitter();
  ~GroupCommitter();
  GroupCommitter(const GroupCommitter&) = delete;
  GroupCommitter& operator=(const GroupCommitter&) = delete;

  /// Parks one staged append: `ticket` is the Wal::append return value on
  /// `wal`, `lsn` the record's log sequence number (the replication gate
  /// below is keyed on it). The shared_ptr keeps a rotated-away log alive
  /// until its last parked response is released. `rid` (0 = untagged)
  /// lets flush() attribute the batch's amortized fsync/gate cost and
  /// queue wait back to the owning request (DESIGN.md §19).
  void enqueue(std::shared_ptr<Wal> wal, std::uint64_t ticket,
               std::uint64_t lsn, Release release, std::uint64_t rid = 0);

  /// Post-fsync gate, invoked once per flushed batch with the batch's
  /// highest LSN. Sync-mode replication parks here (Replicator::
  /// wait_acked) so the follower's network ack overlaps the local fsync
  /// instead of serializing after it. A gate failure fails the whole
  /// batch's releases.
  using Gate = std::function<Status(std::uint64_t max_lsn)>;
  void set_gate(Gate gate);

  /// Flushes stragglers and joins the committer thread. Entries enqueued
  /// after stop() are synced + released inline on the caller's thread.
  void stop();

 private:
  struct Entry {
    std::shared_ptr<Wal> wal;
    std::uint64_t ticket = 0;
    std::uint64_t lsn = 0;
    Release release;
    std::uint64_t rid = 0;         // owning request (0 = untagged)
    std::uint64_t enqueue_ns = 0;  // stamped by enqueue(); queue-wait base
  };

  void loop();
  /// One fsync per consecutive same-log run of `batch`, then releases.
  void flush(std::vector<Entry>& batch);

  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Entry> queue_;
  Gate gate_;
  bool stop_ = false;
  std::thread thread_;
};

class DurableServer {
 public:
  struct Options {
    std::string dir;                        // state directory (must exist)
    int wal_sync_ms = 0;                    // see Wal::Options
    std::uint64_t checkpoint_every_n = 1024;  // mutations per checkpoint
    std::size_t dedup_capacity = 4096;
    bool enable_wal = true;                 // false: checkpoints only
    CloudServer::Options server;
    /// Replication role. A backup answers every client request with
    /// kNotPrimary and applies only Repl* traffic from its primary; the
    /// promote() call flips it live (bumping the fencing term).
    ReplRole role = ReplRole::kPrimary;
  };

  /// Statistics from the recovery pass, for logs and tests.
  struct RecoveryInfo {
    std::uint64_t checkpoint_epoch = 0;  // 0 = started from empty state
    std::uint64_t replayed = 0;          // WAL records re-executed
    std::uint64_t skipped = 0;           // records <= checkpoint LSN
    std::uint64_t duration_ns = 0;       // wall time of the recovery pass
    bool torn_tail = false;              // WAL ended in a torn record
    bool checkpoint_fallback = false;    // newest checkpoint was invalid
  };

  /// Recovers (or bootstraps) server state from opts.dir, verifies it with
  /// fsck, and opens the WAL for appending.
  static Result<std::unique_ptr<DurableServer>> open(Options opts);

  ~DurableServer();
  DurableServer(const DurableServer&) = delete;
  DurableServer& operator=(const DurableServer&) = delete;

  /// Drop-in replacement for CloudServer::handle: reads pass through;
  /// mutations are dedup-checked, WAL-logged, applied, and only
  /// acknowledged once durable. The fsync happens on the caller's thread
  /// (fsync-per-ACK when sync_ms == 0).
  Bytes handle(BytesView request);

  /// Completion for handle_async: receives the response frame once the
  /// mutation is durable. May be invoked inline (reads, dedup hits,
  /// errors) or later from the group-commit thread.
  using Done = std::function<void(Bytes)>;

  /// Pipelining-aware variant of handle() for the reactor server: the
  /// mutation is staged into the WAL and the acknowledgement parks on a
  /// GroupCommitter ticket, so one fsync covers every mutation staged
  /// across all connections while the previous flush was in flight.
  /// Call-order per connection is preserved by the reactor's response
  /// slots, not by this function.
  void handle_async(Bytes request, Done done);

  /// Writes an atomic checkpoint now and rotates the WAL. Also invoked
  /// automatically every checkpoint_every_n mutations and by fgad_server
  /// on SIGTERM.
  Status checkpoint();

  const CloudServer& server() const { return *server_; }
  CloudServer& server() { return *server_; }
  const RecoveryInfo& recovery_info() const { return recovery_; }
  std::uint64_t last_lsn() const;

  // ---- replication (DESIGN.md §18) ----------------------------------------

  /// Wires a primary-side replicator: snapshot source and demote hook
  /// are connected, the committer's sync gate installed when `mode` is
  /// kSync, and the ship thread started. Call once, after open().
  void attach_replicator(std::shared_ptr<Replicator> repl, ReplAckMode mode);

  /// Promotes a backup to primary: bumps the fencing term, persists it
  /// in an immediate checkpoint, and starts accepting client traffic.
  /// From this moment the old primary's appends bounce with kStaleTerm.
  Status promote();

  /// Drops to backup after the follower fenced us off (or by operator
  /// request); client traffic starts bouncing with kNotPrimary.
  void demote(std::uint64_t observed_term);

  ReplRole role() const;
  std::uint64_t term() const;

  /// Follower-side entry point for Repl* frames (handle/handle_async
  /// route here; public so tests can drive it directly).
  Bytes handle_repl(BytesView request);

 private:
  DurableServer(Options opts, std::unique_ptr<CloudServer> server,
                RidDedup dedup);

  Status checkpoint_locked();
  std::string checkpoint_path(std::uint64_t epoch) const;
  std::string wal_path(std::uint64_t epoch) const;

  Bytes handle_repl_append(const proto::ReplAppend& req);
  Bytes handle_repl_snapshot(const proto::ReplSnapshot& req);
  Bytes handle_repl_heartbeat(const proto::ReplHeartbeat& req);
  /// Fencing check shared by every Repl* handler. Returns a kStaleTerm
  /// error frame when the sender must demote, otherwise adopts the
  /// sender's term (and demotes *us* if we were a same-or-lower-term
  /// primary hearing from a newer one).
  std::optional<Bytes> fence_check_locked(std::uint64_t sender_term);
  void set_role_locked(ReplRole role, std::uint64_t term);
  /// Builds the ReplSnapshot payload for catch-up shipping.
  Result<proto::ReplSnapshot> snapshot_for_ship();

  Options opts_;
  std::unique_ptr<CloudServer> server_;

  mutable std::mutex mu_;  // orders WAL appends with their application
  // shared_ptr: an acknowledging handler may still be waiting in
  // sync_through() on a log a concurrent checkpoint just rotated away.
  std::shared_ptr<Wal> wal_;
  RidDedup dedup_;
  std::uint64_t epoch_ = 0;     // epoch of the newest durable checkpoint
  std::uint64_t next_lsn_ = 1;
  std::uint64_t mutations_since_checkpoint_ = 0;
  RecoveryInfo recovery_;
  // Atomic so the lock-free read path can bounce client traffic off a
  // backup without taking the dispatch mutex; writes happen under mu_.
  std::atomic<ReplRole> role_{ReplRole::kPrimary};
  std::uint64_t term_ = 0;  // fencing term, persisted in checkpoints
  std::shared_ptr<Replicator> repl_;  // primary side only
  ReplAckMode repl_mode_ = ReplAckMode::kOff;
  // Declared last: its thread holds shared_ptr<Wal> copies and must be
  // stopped before the members above are torn down.
  GroupCommitter committer_;
};

}  // namespace fgad::cloud
