// Write-ahead log for the cloud server's mutating RPCs (DESIGN.md §13).
//
// Logical redo logging in the ARIES tradition (Mohan et al., PAPERS.md):
// every mutating request frame is appended — CRC32-framed and
// length-prefixed — and made durable *before* the server acknowledges the
// mutation. Recovery replays the tail on top of the newest checkpoint;
// because the server's mutation handlers are deterministic functions of
// (state, request), re-execution reproduces both the state and the
// response byte-for-byte.
//
// On-disk format (all little-endian):
//
//   header:  u32 magic "FGWL" | u16 version | u64 epoch
//   record:  u32 payload_len | u32 crc32(payload) | payload
//   payload: u64 lsn | u32 request_len | request bytes
//
// LSNs are globally monotone across epochs (the checkpoint stores the last
// LSN it covers, so replay after an un-truncated checkpoint skips already
// checkpointed records instead of double-applying them). A torn or
// truncated final record — the expected shape of a mid-append crash — ends
// the scan cleanly; anything after the first invalid frame is ignored and
// the file is truncated back to the last valid boundary before appends
// resume.
//
// Group commit: with sync_ms > 0 appends return immediately and a
// background syncer thread fsyncs the batch every sync_ms milliseconds;
// sync_through() blocks an acknowledging handler until its record's bytes
// are on disk. sync_ms == 0 degenerates to fsync-per-append.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/bytes.h"
#include "common/result.h"

namespace fgad::cloud {

// ---- deterministic crash-point harness -------------------------------------
//
// Tests (and, via FGAD_CRASH_AT, a real fgad_server process) arm a site;
// when the durability layer reaches it the installed handler runs. The
// test handler throws CrashError — unwinding abandons all in-flight I/O
// exactly as a kill -9 would, since nothing in the WAL/checkpoint path
// "cleans up" partial on-disk state on unwind.

enum class CrashSite : int {
  kBeforeWalAppend = 0,   // mutation arrived, nothing logged yet
  kAfterWalPreAck = 1,    // record durable + applied, ACK not sent
  kMidCheckpoint = 2,     // checkpoint temp file written, not yet renamed
  kPostRename = 3,        // checkpoint renamed, WAL not yet rotated
  kBeforeGroupFsync = 4,  // commit batch staged (appended), fsync not done
  kCount = 5,
};

const char* crash_site_name(CrashSite s);

/// Thrown by the default test handler installed via CrashPoint::arm_throw.
struct CrashError {
  CrashSite site;
};

class CrashPoint {
 public:
  static CrashPoint& instance();

  using Handler = std::function<void(CrashSite)>;

  /// Installs `h` to run when `site` fires; null disarms the site.
  void set_handler(CrashSite site, Handler h);
  /// Arms `site` with a handler that throws CrashError{site}.
  void arm_throw(CrashSite site);
  /// Disarms every site.
  void reset();

  /// Called by the durability layer at each site; near-free when unarmed.
  void fire(CrashSite site);

  /// Parses "site[:n]" (site name or index; n = fire on the n-th hit,
  /// default 1) and arms a handler that _exit(42)s the process — the
  /// fgad_server FGAD_CRASH_AT hook for integration tests.
  Status arm_process_exit(const std::string& spec);

 private:
  CrashPoint() = default;

  std::mutex mu_;
  Handler handlers_[static_cast<int>(CrashSite::kCount)];
  std::atomic<bool> armed_[static_cast<int>(CrashSite::kCount)] = {};
};

// ---- the log ---------------------------------------------------------------

class Wal {
 public:
  struct Options {
    // <0: never fsync (bench-only); 0: fsync on every append before it
    // returns; >0: group-commit window in milliseconds.
    int sync_ms = 0;
  };

  /// One decoded record, handed to the replay callback.
  struct Record {
    std::uint64_t lsn = 0;
    Bytes request;
  };

  /// Result of scanning an existing log file.
  struct ScanResult {
    std::uint64_t epoch = 0;
    std::size_t records = 0;       // valid records seen
    std::uint64_t max_lsn = 0;     // largest LSN among them
    std::uint64_t valid_end = 0;   // byte offset of the last valid frame end
    bool torn_tail = false;        // trailing garbage/torn record detected
  };

  /// Creates a fresh log at `path` (truncating any existing file), writes
  /// the header durably, and fsyncs the parent directory.
  static Result<std::unique_ptr<Wal>> create(const std::string& path,
                                             std::uint64_t epoch,
                                             Options opts);

  /// Reads every valid record of `path` in order, invoking `fn` for each;
  /// tolerates a torn/truncated tail. kIoError when the file cannot be
  /// read, kDecodeError when the header itself is invalid.
  static Result<ScanResult> scan(
      const std::string& path, const std::function<void(const Record&)>& fn);

  /// Reopens `path` for appending after a scan: truncates to
  /// `scan.valid_end` (discarding any torn tail) and positions at the end.
  static Result<std::unique_ptr<Wal>> reopen(const std::string& path,
                                             const ScanResult& scan,
                                             Options opts);

  ~Wal();
  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Appends one record (write(2), not yet durable unless sync_ms == 0).
  /// Returns a ticket for sync_through()/sync_to(). With `defer_sync`
  /// the sync_ms == 0 inline fsync is skipped — the record is *staged*
  /// and the caller (the cross-connection group committer) is
  /// responsible for making it durable via sync_to() before anything is
  /// acknowledged on its strength.
  Result<std::uint64_t> append(std::uint64_t lsn, BytesView request,
                               bool defer_sync = false);

  /// Blocks until every byte up to `ticket` is fsynced (no-op when
  /// sync_ms <= 0 or already durable).
  Status sync_through(std::uint64_t ticket);

  /// Immediately fsyncs through `ticket` on the caller's thread,
  /// regardless of the sync_ms window mode (no-op when sync_ms < 0 —
  /// durability disabled — or already durable). One call covers every
  /// record staged at or below the ticket: this is the group-commit
  /// flush primitive.
  Status sync_to(std::uint64_t ticket);

  /// fsyncs everything appended so far.
  Status sync_now();

  std::uint64_t epoch() const { return epoch_; }
  const std::string& path() const { return path_; }
  std::uint64_t appended_bytes() const;
  /// Bytes known fsynced (the durable prefix of the ticket space).
  std::uint64_t durable_bytes() const;

 private:
  Wal(std::string path, int fd, std::uint64_t epoch, std::uint64_t size,
      Options opts);

  void syncer_loop();
  Status fsync_locked_bytes(std::uint64_t upto);

  const std::string path_;
  const std::uint64_t epoch_;
  const Options opts_;
  int fd_ = -1;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::uint64_t written_ = 0;   // bytes appended (ticket space)
  std::uint64_t durable_ = 0;   // bytes known fsynced
  Status sync_error_ = Status::ok();
  bool stop_ = false;
  std::thread syncer_;
};

}  // namespace fgad::cloud
