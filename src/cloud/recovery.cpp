#include "cloud/recovery.h"

#include <dirent.h>
#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "common/fsio.h"
#include "crypto/hasher.h"
#include "integrity/merkle.h"
#include "obs/cost.h"
#include "obs/flight_recorder.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fgad::cloud {

namespace {

constexpr std::uint32_t kCkptMagic = 0x46474350;  // "FGCP"
// v1: epoch | last_lsn | image | dedup.
// v2: epoch | last_lsn | term | image | dedup — the replication fencing
// term (DESIGN.md §18). v1 checkpoints still load (term 0).
constexpr std::uint16_t kCkptVersion = 2;

obs::Counter& checkpoints_counter() {
  static obs::Counter& c =
      obs::Registry::instance().counter("fgad_checkpoints_total");
  return c;
}
obs::Counter& dedup_hits_counter() {
  static obs::Counter& c =
      obs::Registry::instance().counter("fgad_dedup_hits_total");
  return c;
}
obs::Counter& recoveries_counter() {
  static obs::Counter& c =
      obs::Registry::instance().counter("fgad_recoveries_total");
  return c;
}
obs::Counter& replayed_counter() {
  static obs::Counter& c =
      obs::Registry::instance().counter("fgad_recovery_replayed_total");
  return c;
}
obs::Counter& skipped_counter() {
  static obs::Counter& c =
      obs::Registry::instance().counter("fgad_recovery_skipped_total");
  return c;
}
obs::Counter& dedup_evictions_counter() {
  static obs::Counter& c =
      obs::Registry::instance().counter("fgad_dedup_evictions_total");
  return c;
}
obs::Histogram& recovery_hist() {
  static obs::Histogram& h =
      obs::Registry::instance().histogram("fgad_recovery_duration_ns");
  return h;
}
obs::Histogram& commit_batch_hist() {
  static obs::Histogram& h =
      obs::Registry::instance().histogram("fgad_wal_commit_batch_size");
  return h;
}
obs::Counter& group_commits_counter() {
  static obs::Counter& c =
      obs::Registry::instance().counter("fgad_wal_group_commits_total");
  return c;
}
obs::Histogram& checkpoint_hist() {
  static obs::Histogram& h =
      obs::Registry::instance().histogram("fgad_checkpoint_duration_ns");
  return h;
}
obs::Gauge& dedup_entries_gauge() {
  static obs::Gauge& g =
      obs::Registry::instance().gauge("fgad_dedup_entries");
  return g;
}
obs::Gauge& ckpt_epoch_gauge() {
  static obs::Gauge& g =
      obs::Registry::instance().gauge("fgad_checkpoint_epoch");
  return g;
}
obs::Gauge& ckpt_size_gauge() {
  static obs::Gauge& g =
      obs::Registry::instance().gauge("fgad_checkpoint_size_bytes");
  return g;
}
// Checkpoint age is the scrape-side difference between now and this wall
// timestamp — the standard Prometheus idiom for "age of X".
obs::Gauge& ckpt_last_unix_gauge() {
  static obs::Gauge& g =
      obs::Registry::instance().gauge("fgad_checkpoint_last_unix_seconds");
  return g;
}

Bytes io_error_frame(const std::string& msg) {
  proto::ErrorMsg e;
  e.code = Errc::kIoError;
  e.message = msg;
  return e.to_frame();
}

Bytes not_primary_frame() {
  proto::ErrorMsg e;
  e.code = Errc::kNotPrimary;
  e.message = "this node is a replication backup; redial the primary";
  return e.to_frame();
}

/// Maps a durability/replication failure to the client-visible error
/// frame: a fencing loss mid-commit means "we are not the primary any
/// more" (so the failover channel re-routes); everything else keeps its
/// code so kTimeout stays in the client's indeterminate-commit set.
Bytes commit_fail_frame(const Status& st) {
  if (st.code() == Errc::kStaleTerm) {
    return not_primary_frame();
  }
  proto::ErrorMsg e;
  e.code = st.code();
  e.message = "commit failed: " + st.to_string();
  return e.to_frame();
}

bool is_repl_type(proto::MsgType t) {
  switch (t) {
    case proto::MsgType::kReplAppend:
    case proto::MsgType::kReplAck:
    case proto::MsgType::kReplSnapshot:
    case proto::MsgType::kReplHeartbeat:
      return true;
    default:
      return false;
  }
}

/// Lists `<prefix><number><suffix>` entries of `dir`, returning the parsed
/// numbers sorted ascending.
std::vector<std::uint64_t> list_numbered(const std::string& dir,
                                         const std::string& prefix,
                                         const std::string& suffix) {
  std::vector<std::uint64_t> out;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    return out;
  }
  while (dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name.size() <= prefix.size() + suffix.size() ||
        name.compare(0, prefix.size(), prefix) != 0 ||
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) !=
            0) {
      continue;
    }
    const std::string digits =
        name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    out.push_back(std::strtoull(digits.c_str(), nullptr, 10));
  }
  ::closedir(d);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

// ---- RidDedup --------------------------------------------------------------

const Bytes* RidDedup::find(std::uint64_t rid) const {
  const auto it = by_rid_.find(rid);
  return it == by_rid_.end() ? nullptr : &it->second;
}

void RidDedup::put(std::uint64_t rid, Bytes response) {
  if (rid == 0 || capacity_ == 0) {
    return;
  }
  const auto it = by_rid_.find(rid);
  if (it != by_rid_.end()) {
    it->second = std::move(response);  // replay refresh; order unchanged
    return;
  }
  while (order_.size() >= capacity_) {
    by_rid_.erase(order_.front());
    order_.pop_front();
    dedup_evictions_counter().inc();
  }
  order_.push_back(rid);
  by_rid_.emplace(rid, std::move(response));
  dedup_entries_gauge().set(static_cast<std::int64_t>(order_.size()));
}

void RidDedup::serialize(proto::Writer& w) const {
  w.u64(order_.size());
  for (std::uint64_t rid : order_) {
    w.u64(rid);
    w.bytes(by_rid_.at(rid));
  }
}

Status RidDedup::deserialize(proto::Reader& r) {
  const std::uint64_t n = r.u64();
  if (!r.ok() || n > (1ull << 32)) {
    return Status(Errc::kDecodeError, "dedup table: bad entry count");
  }
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t rid = r.u64();
    Bytes resp = r.bytes();
    if (!r.ok()) {
      return Status(Errc::kDecodeError, "dedup table: truncated");
    }
    put(rid, std::move(resp));
  }
  return Status::ok();
}

// ---- fsck ------------------------------------------------------------------

Status fsck(const CloudServer& server) {
  for (std::uint64_t id : server.file_ids()) {
    const FileStore* fs = server.file(id);
    const auto fail = [id](const std::string& what) {
      return Status(Errc::kIntegrityMismatch,
                    "fsck: file " + std::to_string(id) + ": " + what);
    };
    const core::ModulationTree& tree = fs->tree();
    const ItemStore& items = fs->items();
    const std::size_t n = tree.node_count();
    // Left-complete shape: a heap array has 0 or an odd number of nodes,
    // and exactly (n+1)/2 of them are leaves carrying the items.
    if (n % 2 == 0 && n != 0) {
      return fail("even node count " + std::to_string(n));
    }
    if (tree.leaf_count() != items.size()) {
      return fail("leaf count " + std::to_string(tree.leaf_count()) +
                  " != item count " + std::to_string(items.size()));
    }
    // Leaf -> item linkage.
    for (core::NodeId v = 0; v < n; ++v) {
      if (!tree.is_leaf(v)) {
        continue;
      }
      const std::uint64_t slot = tree.item_slot(v);
      if (slot > ~std::uint32_t{0} ||
          !items.valid(static_cast<std::uint32_t>(slot))) {
        return fail("leaf " + std::to_string(v) + " points at dead slot");
      }
      if (items.at(static_cast<std::uint32_t>(slot)).leaf != v) {
        return fail("leaf " + std::to_string(v) +
                    " and its item disagree on linkage");
      }
    }
    // Item -> leaf linkage, walking the file-order list end to end.
    std::size_t walked = 0;
    for (std::uint32_t slot = items.first(); slot != ItemStore::kNoSlot;
         slot = items.next_of(slot)) {
      const ItemStore::Record& rec = items.at(slot);
      if (!tree.is_leaf(rec.leaf) || tree.item_slot(rec.leaf) != slot) {
        return fail("item " + std::to_string(rec.item_id) +
                    " leaf back-pointer broken");
      }
      ++walked;
    }
    if (walked != items.size()) {
      return fail("file-order list covers " + std::to_string(walked) +
                  " of " + std::to_string(items.size()) + " items");
    }
    // Integrity root: recompute every leaf hash from the stored
    // ciphertexts and rebuild the root from scratch.
    if (fs->integrity_enabled() && n > 0) {
      const std::size_t leaves = tree.leaf_count();
      crypto::Hasher hasher(tree.alg());
      std::vector<crypto::Md> hashes(leaves);
      for (std::size_t i = 0; i < leaves; ++i) {
        const core::NodeId leaf = (leaves - 1) + i;
        const ItemStore::Record& rec =
            items.at(static_cast<std::uint32_t>(tree.item_slot(leaf)));
        hashes[i] = integrity::leaf_hash(hasher, rec.item_id, rec.ciphertext);
      }
      integrity::HashTree check(tree.alg());
      check.build(hashes);
      if (!(check.root() == fs->integrity_root())) {
        return fail("integrity root mismatch");
      }
    }
  }
  return Status::ok();
}

namespace {

/// Owns the rid's trace capture for the durability layer when no outer
/// capture is active: spans opened anywhere below (WAL append, fsync,
/// replication wait, the apply inside CloudServer::handle) land on one
/// timeline that is stored to the TraceStore on scope exit. `parent` is
/// the client's RPC span id from the V2 envelope, so the stored segment
/// stitches under the client's tree (DESIGN.md §19).
class TraceCaptureGuard {
 public:
  TraceCaptureGuard(std::uint64_t rid, std::uint64_t parent) {
    if (rid != 0 && obs::TraceStore::instance().capture_enabled() &&
        !obs::trace_active()) {
      rid_ = rid;
      obs::trace_begin(rid, parent);
    }
  }
  ~TraceCaptureGuard() {
    if (rid_ != 0) {
      obs::TraceStore::instance().put(rid_, obs::trace_render_chrome_json());
      obs::trace_stop();
    }
  }
  TraceCaptureGuard(const TraceCaptureGuard&) = delete;
  TraceCaptureGuard& operator=(const TraceCaptureGuard&) = delete;

 private:
  std::uint64_t rid_ = 0;
};

/// Folds the rid's residual CostLedger row (fsync share, replication
/// wait, total — buckets charged after CloudServer sealed the response)
/// into the response's V2 timing trailer. No-op for V1/untagged
/// responses or when nothing residual accrued, so the dedup-stored bytes
/// pass through unchanged on resends.
Bytes reseal_with_costs(std::uint64_t rid, Bytes resp) {
  auto& ledger = obs::CostLedger::instance();
  if (rid == 0 || !ledger.enabled()) {
    return resp;
  }
  const auto tag = proto::open_tagged(resp);
  if (!tag || !tag->v2) {
    return resp;
  }
  const auto residual = ledger.take(rid);
  if (!residual.any()) {
    return resp;
  }
  auto merged = residual.ns;
  for (const auto& t : tag->timings) {
    if (t.kind < merged.size()) {
      merged[t.kind] += t.ns;
    }
  }
  std::vector<proto::TimingEntry> out;
  for (std::size_t i = 0; i < merged.size(); ++i) {
    if (merged[i] != 0) {
      out.push_back({static_cast<std::uint8_t>(i), merged[i]});
    }
  }
  return proto::seal_tagged_v2(tag->request_id, tag->span_id,
                               tag->parent_span_id, out, tag->inner);
}

/// RAII for the audit log's thread-local commit context: audit lines
/// written during the bracketed apply carry this term/LSN.
class CommitContextGuard {
 public:
  CommitContextGuard(std::uint64_t term, std::uint64_t lsn) {
    obs::AuditLog::set_commit_context(term, lsn);
  }
  ~CommitContextGuard() { obs::AuditLog::clear_commit_context(); }
  CommitContextGuard(const CommitContextGuard&) = delete;
  CommitContextGuard& operator=(const CommitContextGuard&) = delete;
};

}  // namespace

// ---- GroupCommitter --------------------------------------------------------

GroupCommitter::GroupCommitter() {
  thread_ = std::thread([this] { loop(); });
}

GroupCommitter::~GroupCommitter() {
  stop();
}

void GroupCommitter::enqueue(std::shared_ptr<Wal> wal, std::uint64_t ticket,
                             std::uint64_t lsn, Release release,
                             std::uint64_t rid) {
  const std::uint64_t now = obs::now_ns();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!stop_) {
      queue_.push_back(
          Entry{std::move(wal), ticket, lsn, std::move(release), rid, now});
      cv_.notify_one();
      return;
    }
  }
  // Shut down: degrade to a single-entry flush on the caller's thread so
  // the durability contract still holds.
  std::vector<Entry> one;
  one.push_back(Entry{std::move(wal), ticket, lsn, std::move(release), rid, now});
  flush(one);
}

void GroupCommitter::set_gate(Gate gate) {
  std::lock_guard<std::mutex> lock(mu_);
  gate_ = std::move(gate);
}

void GroupCommitter::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) {
      return;
    }
    stop_ = true;
    cv_.notify_all();
  }
  if (thread_.joinable()) {
    thread_.join();
  }
}

void GroupCommitter::flush(std::vector<Entry>& batch) {
  Gate gate;
  {
    std::lock_guard<std::mutex> lock(mu_);
    gate = gate_;
  }
  // Consecutive entries on the same log share one fsync: sync_to() with
  // the run's highest ticket covers every record staged at or below it.
  // (In practice the run is the whole batch; it only splits across a
  // checkpoint-triggered WAL rotation.)
  std::size_t i = 0;
  while (i < batch.size()) {
    std::size_t j = i;
    std::uint64_t max_ticket = 0;
    std::uint64_t max_lsn = 0;
    while (j < batch.size() && batch[j].wal == batch[i].wal) {
      max_ticket = std::max(max_ticket, batch[j].ticket);
      max_lsn = std::max(max_lsn, batch[j].lsn);
      ++j;
    }
    // A crash here loses the WHOLE staged batch atomically: nothing in
    // [i, j) was acknowledged yet, and the un-fsynced tail vanishes as
    // one unit. Tests arm this site to prove no torn partial-batch ACKs.
    Status st = Status::ok();
    std::uint64_t fsync_ns = 0;
    std::uint64_t fsync_start_ns = 0;
    try {
      CrashPoint::instance().fire(CrashSite::kBeforeGroupFsync);
      const std::uint64_t t0 = obs::now_ns();
      fsync_start_ns = t0;
      st = batch[i].wal ? batch[i].wal->sync_to(max_ticket) : Status::ok();
      fsync_ns = obs::now_ns() - t0;
    } catch (const CrashError&) {
      // Simulated death mid-commit (throw-flavor crash point): the batch
      // dies unacknowledged, exactly like the process would.
      for (std::size_t k = i; k < j; ++k) {
        batch[k].release = nullptr;
      }
      i = j;
      continue;
    }
    // Replication sync gate: the batch's records were staged into the
    // Replicator at append time, so its ship thread has been sending
    // them to the follower WHILE the fsync above ran. Parking here only
    // waits out whatever part of the network round trip the disk did
    // not already cover.
    std::uint64_t gate_ns = 0;
    if (st && gate && max_lsn > 0) {
      const std::uint64_t g0 = obs::now_ns();
      st = gate(max_lsn);
      gate_ns = obs::now_ns() - g0;
    }
    const std::uint64_t n = j - i;
    group_commits_counter().inc();
    commit_batch_hist().observe(n);
    obs::FlightRecorder::instance().record(obs::FrEvent::kGroupCommitFlush, 0,
                                           n, fsync_ns);
    // Per-request cost attribution: the run's one fsync (and one sync-ack
    // gate) covered n mutations, so each rid is charged its 1/n share —
    // the shares sum back to the batch's real cost. Queue wait is the gap
    // between the entry's enqueue and the fsync starting. The amortized
    // fsync share is also spliced into each rid's stored trace as a
    // committer-thread event (DESIGN.md §19).
    if (obs::CostLedger::instance().enabled() && n > 0) {
      auto& ledger = obs::CostLedger::instance();
      const bool tracing = obs::TraceStore::instance().capture_enabled();
      for (std::size_t k = i; k < j; ++k) {
        const std::uint64_t rid = batch[k].rid;
        if (rid == 0) {
          continue;
        }
        if (batch[k].enqueue_ns != 0 && fsync_start_ns > batch[k].enqueue_ns) {
          ledger.add(rid, obs::CostKind::kQueueWait,
                     fsync_start_ns - batch[k].enqueue_ns);
        }
        ledger.add(rid, obs::CostKind::kFsyncShare, fsync_ns / n);
        if (gate_ns != 0) {
          ledger.add(rid, obs::CostKind::kReplWait, gate_ns / n);
        }
        if (tracing && fsync_ns != 0) {
          obs::TraceStore::instance().append_event(rid, "fsync_share",
                                                   fsync_start_ns,
                                                   fsync_ns / n);
        }
      }
    }
    for (std::size_t k = i; k < j; ++k) {
      if (batch[k].release) {
        batch[k].release(st);
      }
    }
    i = j;
  }
  batch.clear();
}

void GroupCommitter::loop() {
  std::vector<Entry> batch;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) {
      break;  // stop_ with nothing left to flush
    }
    // Swap out the entire stage: everything that arrived while the
    // previous fsync ran commits under the next single flush.
    batch.swap(queue_);
    lock.unlock();
    flush(batch);
    lock.lock();
  }
}

// ---- DurableServer ---------------------------------------------------------

DurableServer::DurableServer(Options opts,
                             std::unique_ptr<CloudServer> server,
                             RidDedup dedup)
    : opts_(std::move(opts)),
      server_(std::move(server)),
      dedup_(std::move(dedup)) {}

DurableServer::~DurableServer() = default;

std::string DurableServer::checkpoint_path(std::uint64_t epoch) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "checkpoint-%06" PRIu64 ".ckpt", epoch);
  return opts_.dir + "/" + buf;
}

std::string DurableServer::wal_path(std::uint64_t epoch) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "wal-%06" PRIu64 ".log", epoch);
  return opts_.dir + "/" + buf;
}

std::uint64_t DurableServer::last_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_lsn_ - 1;
}

Result<std::unique_ptr<DurableServer>> DurableServer::open(Options opts) {
  if (opts.dir.empty()) {
    return Error(Errc::kInvalidArgument, "recovery: empty state dir");
  }
  const std::uint64_t recover_t0 = obs::now_ns();
  // /readyz reports 503 until checkpoint load + WAL replay + fsck all
  // complete (the guard clears on every exit path from open()).
  obs::Readiness::Block not_ready("recovery",
                                  "checkpoint load / WAL replay in progress");
  auto ds = std::unique_ptr<DurableServer>(new DurableServer(
      opts, std::make_unique<CloudServer>(opts.server),
      RidDedup(opts.dedup_capacity)));

  // 1. Newest valid checkpoint wins; older ones are the fallback when the
  //    newest is unreadable (disk rot — a crash cannot produce a torn
  //    checkpoint because the rename is atomic).
  std::uint64_t base_lsn = 0;
  std::vector<std::uint64_t> ckpts =
      list_numbered(opts.dir, "checkpoint-", ".ckpt");
  for (auto it = ckpts.rbegin(); it != ckpts.rend(); ++it) {
    auto data = fsio::read_file(ds->checkpoint_path(*it));
    if (!data || data.value().size() < 4) {
      ds->recovery_.checkpoint_fallback = true;
      continue;
    }
    const Bytes& buf = data.value();
    proto::Reader tr(BytesView(buf.data() + buf.size() - 4, 4));
    if (fsio::crc32(BytesView(buf.data(), buf.size() - 4)) != tr.u32()) {
      ds->recovery_.checkpoint_fallback = true;
      continue;
    }
    proto::Reader r(BytesView(buf.data(), buf.size() - 4));
    const std::uint32_t magic = r.u32();
    const std::uint16_t version = r.u16();
    if (magic != kCkptMagic || version < 1 || version > kCkptVersion) {
      ds->recovery_.checkpoint_fallback = true;
      continue;
    }
    const std::uint64_t epoch = r.u64();
    const std::uint64_t lsn = r.u64();
    // v1 checkpoints predate replication; they read as term 0, which
    // open() below bootstraps to 1 for a primary.
    const std::uint64_t term = version >= 2 ? r.u64() : 0;
    const Bytes image = r.bytes();
    if (!r.ok()) {
      ds->recovery_.checkpoint_fallback = true;
      continue;
    }
    proto::Reader ir(image);
    auto server = CloudServer::load(ir, opts.server);
    if (!server || !ir.finish()) {
      ds->recovery_.checkpoint_fallback = true;
      continue;
    }
    RidDedup dedup(opts.dedup_capacity);
    if (auto st = dedup.deserialize(r); !st) {
      ds->recovery_.checkpoint_fallback = true;
      continue;
    }
    ds->server_ = std::move(server).value();
    ds->dedup_ = std::move(dedup);
    ds->epoch_ = epoch;
    ds->term_ = term;
    base_lsn = lsn;
    ds->recovery_.checkpoint_epoch = epoch;
    break;
  }

  // 2. Replay every WAL file in epoch order. LSN skipping makes this
  //    correct under any crash interleaving: records already covered by
  //    the chosen checkpoint are skipped, everything younger re-executes
  //    through the exact same dispatch path as live traffic.
  obs::FlightRecorder::instance().record(
      obs::FrEvent::kRecoveryBegin, 0, ds->recovery_.checkpoint_epoch);

  std::uint64_t max_lsn = base_lsn;
  Wal::ScanResult last_scan;
  std::uint64_t last_wal_epoch = 0;
  bool have_wal_file = false;
  for (std::uint64_t e : list_numbered(opts.dir, "wal-", ".log")) {
    auto scan = Wal::scan(
        ds->wal_path(e), [&](const Wal::Record& rec) {
          if (rec.lsn <= base_lsn) {
            ++ds->recovery_.skipped;
            return;
          }
          const auto tag = proto::split_tagged(rec.request);
          const std::uint64_t rid = tag ? tag->first : 0;
          if (rid != 0 && ds->dedup_.find(rid) != nullptr) {
            ++ds->recovery_.skipped;  // duplicate record; already applied
            return;
          }
          Bytes resp = ds->server_->handle(rec.request);
          ds->dedup_.put(rid, std::move(resp));
          ++ds->recovery_.replayed;
          max_lsn = std::max(max_lsn, rec.lsn);
        });
    if (!scan) {
      // Unreadable/invalid-header WAL file: records in it (if any) were
      // never acknowledged without an fsync, but surface loudly.
      obs::Logger::instance().log(
          obs::Level::kError, "wal_scan_failed",
          obs::Kv().str("path", ds->wal_path(e)).str(
              "error", scan.status().to_string()));
      continue;
    }
    ds->recovery_.torn_tail = scan.value().torn_tail;
    last_scan = scan.value();
    last_wal_epoch = e;
    have_wal_file = true;
  }
  ds->next_lsn_ = max_lsn + 1;

  // 3. The recovered image must satisfy every structural invariant before
  //    we serve from it. A failure here is exactly the moment forensics
  //    matter, so the ring is dumped before the error propagates.
  if (auto st = fsck(*ds->server_); !st) {
    auto& fr = obs::FlightRecorder::instance();
    fr.record(obs::FrEvent::kFsckFail, 0);
    char path[obs::FlightRecorder::kMaxDumpDir + 128];
    if (fr.dump_auto("fsck", path, sizeof(path))) {
      obs::Logger::instance().log(
          obs::Level::kError, "flight_recorder_dump",
          obs::Kv().str("path", path).str("error", st.to_string()));
    }
    return st.error();
  }

  // 4. Open the log for appending: continue the newest WAL file (its torn
  //    tail, if any, is truncated away) or start the epoch's first one.
  if (opts.enable_wal) {
    Wal::Options wopts{opts.wal_sync_ms};
    if (have_wal_file && last_wal_epoch >= ds->epoch_) {
      auto w = Wal::reopen(ds->wal_path(last_wal_epoch), last_scan, wopts);
      if (!w) {
        return w.error();
      }
      ds->wal_ = std::move(w).value();
    } else {
      auto w = Wal::create(ds->wal_path(ds->epoch_), ds->epoch_, wopts);
      if (!w) {
        return w.error();
      }
      ds->wal_ = std::move(w).value();
    }
  }

  // 5. Replication role. A primary with no persisted term starts at 1 so
  //    term 0 can never appear on the wire (a follower uses 0 to mean
  //    "adopt whatever the primary says"). A backup keeps whatever term
  //    its newest checkpoint carried and waits for the primary's stream.
  if (opts.role == ReplRole::kPrimary && ds->term_ == 0) {
    ds->term_ = 1;
  }
  ds->set_role_locked(opts.role, ds->term_);

  ds->recovery_.duration_ns = obs::now_ns() - recover_t0;
  recoveries_counter().inc();
  replayed_counter().inc(ds->recovery_.replayed);
  skipped_counter().inc(ds->recovery_.skipped);
  recovery_hist().observe(ds->recovery_.duration_ns);
  obs::FlightRecorder::instance().record(obs::FrEvent::kRecoveryEnd, 0,
                                         ds->recovery_.replayed,
                                         ds->recovery_.skipped);
  obs::AuditLog::Entry audit;
  audit.op = "recovered";
  audit.item = ds->recovery_.replayed;
  audit.path_len = static_cast<std::size_t>(ds->recovery_.checkpoint_epoch);
  audit.cut_size = static_cast<std::size_t>(ds->recovery_.torn_tail);
  obs::AuditLog::instance().record(audit, Status::ok());
  obs::Logger::instance().log(
      obs::Level::kInfo, "recovered",
      obs::Kv()
          .u64("checkpoint_epoch", ds->recovery_.checkpoint_epoch)
          .u64("replayed", ds->recovery_.replayed)
          .u64("skipped", ds->recovery_.skipped)
          .u64("torn_tail", ds->recovery_.torn_tail ? 1 : 0)
          .u64("next_lsn", ds->next_lsn_));
  return ds;
}

Bytes DurableServer::handle(BytesView request) {
  const auto type = proto::peek_type(request);
  if (type && is_repl_type(*type)) {
    return handle_repl(request);  // primary -> follower stream
  }
  if (role_.load(std::memory_order_acquire) != ReplRole::kPrimary) {
    // A backup answers everything — reads included — with kNotPrimary:
    // serving reads from a follower would expose a stale, possibly
    // un-deleted view of data the primary already assured-deleted.
    return not_primary_frame();
  }
  if (!type || !proto::is_mutating(*type)) {
    return server_->handle(request);  // reads never touch the log
  }
  const auto tag = proto::open_tagged(request);
  const std::uint64_t rid = tag ? tag->request_id : 0;
  // Bind the rid to this thread before touching the durability layer so
  // the WAL append/fsync and crash-point flight events it emits carry it.
  obs::RequestScope rid_scope(rid);
  // The durability layer owns the rid's trace capture (when enabled) so
  // its WAL/fsync/replication spans share one timeline with the apply.
  TraceCaptureGuard trace_guard(rid, tag ? tag->span_id : 0);
  const std::uint64_t total_t0 = obs::now_ns();

  std::shared_ptr<Wal> wal;
  std::shared_ptr<Replicator> repl;
  ReplAckMode mode = ReplAckMode::kOff;
  std::uint64_t ticket = 0;
  std::uint64_t lsn = 0;
  Bytes resp;
  bool checkpointed = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    repl = repl_;
    mode = repl_mode_;
    if (rid != 0) {
      if (const Bytes* cached = dedup_.find(rid)) {
        // Exactly-once: the mutation already applied (possibly replayed
        // from the WAL after a crash); hand back the original response
        // instead of double-applying it.
        dedup_hits_counter().inc();
        obs::FlightRecorder::instance().record(obs::FrEvent::kDedupHit, rid);
        if (repl && mode == ReplAckMode::kSync) {
          // The cached response was first acked under the sync contract,
          // so the record is on the follower — but a resend after
          // failover-and-failback could race a still-catching-up backup.
          // Gate conservatively on everything logged so far.
          lsn = next_lsn_ - 1;
          resp = *cached;
        } else {
          return *cached;
        }
      }
    }
    if (resp.empty()) {
      CrashPoint::instance().fire(CrashSite::kBeforeWalAppend);
      if (wal_) {
        obs::Span wal_span("wal_append");
        obs::ScopedCost wal_cost(obs::CostKind::kWalAppend);
        lsn = next_lsn_++;
        auto t = wal_->append(lsn, request);
        if (!t) {
          return io_error_frame("wal append failed: " + t.error().message);
        }
        ticket = t.value();
        wal = wal_;
        if (repl) {
          // Staged under the dispatch lock so the ship stream sees the
          // exact LSN order of the log.
          repl->stage(term_, lsn, request);
        }
      }
      {
        CommitContextGuard commit_ctx(term_, lsn);
        resp = server_->handle(request);
      }
      dedup_.put(rid, resp);
      ++mutations_since_checkpoint_;
      if (opts_.checkpoint_every_n > 0 &&
          mutations_since_checkpoint_ >= opts_.checkpoint_every_n) {
        // Stop-the-world image; also fsyncs and rotates the WAL, so the
        // just-appended record is durable once this returns.
        if (auto st = checkpoint_locked(); st) {
          checkpointed = true;
        }
      }
    }
  }
  // Group commit happens outside the dispatch lock: concurrent mutations
  // pile onto one fsync while the next request proceeds.
  if (wal && !checkpointed) {
    obs::Span fsync_span("fsync");
    obs::ScopedCost fsync_cost(obs::CostKind::kFsyncShare);
    if (auto st = wal->sync_through(ticket); !st) {
      return io_error_frame("wal sync failed: " + st.to_string());
    }
  }
  // Sync ack mode: the client ACK additionally waits for the follower's
  // durable ack. The ship thread has been streaming since stage(), so
  // this overlaps the fsync above rather than serializing after it.
  if (repl && mode == ReplAckMode::kSync && lsn > 0) {
    obs::Span repl_span("repl_wait");
    obs::ScopedCost repl_cost(obs::CostKind::kReplWait);
    if (auto st = repl->wait_acked(lsn); !st) {
      return commit_fail_frame(st);
    }
  }
  CrashPoint::instance().fire(CrashSite::kAfterWalPreAck);
  if (rid != 0 && obs::CostLedger::instance().enabled()) {
    obs::CostLedger::instance().add(rid, obs::CostKind::kTotal,
                                    obs::now_ns() - total_t0);
  }
  // Fold the post-apply buckets (fsync, replication wait, total) into the
  // V2 response's server-timing trailer. Dedup stored the pre-reseal
  // bytes above, which is what a resend gets back.
  return reseal_with_costs(rid, std::move(resp));
}

void DurableServer::handle_async(Bytes request, Done done) {
  const auto type = proto::peek_type(request);
  if (type && is_repl_type(*type)) {
    done(handle_repl(request));  // primary -> follower stream
    return;
  }
  if (role_.load(std::memory_order_acquire) != ReplRole::kPrimary) {
    done(not_primary_frame());  // see handle(): backups serve nothing
    return;
  }
  if (!type || !proto::is_mutating(*type)) {
    done(server_->handle(request));  // reads never touch the log
    return;
  }
  const auto tag = proto::open_tagged(request);
  const std::uint64_t rid = tag ? tag->request_id : 0;
  obs::RequestScope rid_scope(rid);
  // Captures the dispatch-side spans (wal_append + apply); the group
  // committer splices its amortized fsync share into the stored trace
  // later via TraceStore::append_event.
  TraceCaptureGuard trace_guard(rid, tag ? tag->span_id : 0);
  const std::uint64_t total_t0 = obs::now_ns();

  std::shared_ptr<Wal> wal;
  std::shared_ptr<Replicator> repl;
  ReplAckMode mode = ReplAckMode::kOff;
  std::uint64_t ticket = 0;
  std::uint64_t lsn = 0;
  Bytes resp;
  bool durable_already = false;
  bool dedup_hit = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    repl = repl_;
    mode = repl_mode_;
    if (rid != 0) {
      if (const Bytes* cached = dedup_.find(rid)) {
        dedup_hits_counter().inc();
        obs::FlightRecorder::instance().record(obs::FrEvent::kDedupHit, rid);
        resp = *cached;
        durable_already = true;
        dedup_hit = true;
        // Sync ack mode still gates a dedup hit on the follower (see
        // handle()): re-serve only once everything logged so far acked.
        lsn = next_lsn_ - 1;
      }
    }
    if (!durable_already) {
      CrashPoint::instance().fire(CrashSite::kBeforeWalAppend);
      if (wal_) {
        obs::Span wal_span("wal_append");
        obs::ScopedCost wal_cost(obs::CostKind::kWalAppend);
        lsn = next_lsn_++;
        // Staged, not yet durable: the group committer below performs
        // the fsync for the whole cross-connection batch at once.
        auto t = wal_->append(lsn, request, /*defer_sync=*/true);
        if (!t) {
          done(io_error_frame("wal append failed: " + t.error().message));
          return;
        }
        ticket = t.value();
        wal = wal_;
        if (repl) {
          repl->stage(term_, lsn, request);
        }
      }
      {
        CommitContextGuard commit_ctx(term_, lsn);
        resp = server_->handle(request);
      }
      dedup_.put(rid, resp);
      ++mutations_since_checkpoint_;
      if (opts_.checkpoint_every_n > 0 &&
          mutations_since_checkpoint_ >= opts_.checkpoint_every_n) {
        // checkpoint_locked() fsyncs the log first, so the staged record
        // is durable once this succeeds — no ticket wait needed.
        if (auto st = checkpoint_locked(); st) {
          durable_already = true;
        }
      }
    }
  }
  const bool sync_repl = repl && mode == ReplAckMode::kSync && lsn > 0;
  if ((wal == nullptr || durable_already) && !sync_repl) {
    CrashPoint::instance().fire(CrashSite::kAfterWalPreAck);
    done(std::move(resp));
    return;
  }
  if (wal == nullptr || durable_already) {
    // Locally durable (dedup hit or checkpoint covered the record) but
    // the sync gate still applies: park on the committer with no log to
    // flush so the reactor thread never blocks on the network.
    wal = nullptr;
    ticket = 0;
  }
  committer_.enqueue(
      wal, ticket, lsn,
      [rid, dedup_hit, total_t0, resp = std::move(resp),
       done = std::move(done)](Status st) mutable {
        if (!st) {
          done(commit_fail_frame(st));
          return;
        }
        obs::RequestScope rid_scope(rid);
        if (!dedup_hit) {
          try {
            CrashPoint::instance().fire(CrashSite::kAfterWalPreAck);
          } catch (const CrashError&) {
            return;  // simulated death before the ACK: drop the response
          }
        }
        // Fold the flush's amortized buckets (queue wait, fsync share,
        // gate share — charged by GroupCommitter::flush just before this
        // release ran) plus the total into the V2 trailer.
        if (rid != 0 && obs::CostLedger::instance().enabled()) {
          obs::CostLedger::instance().add(rid, obs::CostKind::kTotal,
                                          obs::now_ns() - total_t0);
        }
        done(reseal_with_costs(rid, std::move(resp)));
      },
      rid);
}

Status DurableServer::checkpoint() {
  std::lock_guard<std::mutex> lock(mu_);
  return checkpoint_locked();
}

Status DurableServer::checkpoint_locked() {
  // Everything logged so far must be durable before the image that
  // supersedes it claims to cover it.
  if (wal_) {
    if (auto st = wal_->sync_now(); !st) {
      return st;
    }
  }
  const std::uint64_t new_epoch = epoch_ + 1;
  const std::uint64_t last = next_lsn_ - 1;
  obs::ScopedTimer ckpt_timer(checkpoint_hist());
  obs::FlightRecorder::instance().record(
      obs::FrEvent::kCheckpointBegin, obs::current_request_id(), new_epoch);

  proto::Writer w;
  w.u32(kCkptMagic);
  w.u16(kCkptVersion);
  w.u64(new_epoch);
  w.u64(last);
  w.u64(term_);  // v2: fencing term survives restarts (DESIGN.md §18)
  proto::Writer image;
  server_->save(image);
  w.bytes(image.data());
  dedup_.serialize(w);
  const std::uint32_t crc = fsio::crc32(w.data());
  w.u32(crc);

  // temp -> fsync -> (crash point) -> rename -> (crash point) -> fsync dir
  const std::string path = checkpoint_path(new_epoch);
  const std::string tmp = path + ".tmp";
  {
    const int fd =
        ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd < 0) {
      return Status(Errc::kIoError,
                    "checkpoint open " + tmp + ": " + std::strerror(errno));
    }
    const BytesView data = w.data();
    std::size_t off = 0;
    while (off < data.size()) {
      const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
      if (n < 0) {
        if (errno == EINTR) {
          continue;
        }
        const Status st(Errc::kIoError,
                        std::string("checkpoint write: ") +
                            std::strerror(errno));
        ::close(fd);
        ::unlink(tmp.c_str());
        return st;
      }
      off += static_cast<std::size_t>(n);
    }
    if (::fsync(fd) != 0) {
      const Status st(Errc::kIoError,
                      std::string("checkpoint fsync: ") + std::strerror(errno));
      ::close(fd);
      ::unlink(tmp.c_str());
      return st;
    }
    ::close(fd);
  }
  CrashPoint::instance().fire(CrashSite::kMidCheckpoint);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const Status st(Errc::kIoError,
                    std::string("checkpoint rename: ") + std::strerror(errno));
    ::unlink(tmp.c_str());
    return st;
  }
  CrashPoint::instance().fire(CrashSite::kPostRename);
  if (auto st = fsio::fsync_parent_dir(path); !st) {
    return st;
  }

  // Log truncation: new epoch's WAL first, then drop superseded files.
  // If rotation fails we keep appending to the old file — recovery's
  // LSN-skipping replay stays correct either way.
  if (wal_) {
    auto w2 = Wal::create(wal_path(new_epoch), new_epoch,
                          Wal::Options{opts_.wal_sync_ms});
    if (!w2) {
      return w2.status();
    }
    wal_ = std::move(w2).value();
  }
  const std::uint64_t old_epoch = epoch_;
  epoch_ = new_epoch;
  mutations_since_checkpoint_ = 0;
  checkpoints_counter().inc();
  ckpt_epoch_gauge().set(static_cast<std::int64_t>(new_epoch));
  ckpt_size_gauge().set(static_cast<std::int64_t>(w.size()));
  ckpt_last_unix_gauge().set(static_cast<std::int64_t>(
      std::chrono::duration_cast<std::chrono::seconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count()));
  obs::FlightRecorder::instance().record(
      obs::FrEvent::kCheckpointCommit, obs::current_request_id(), new_epoch,
      w.size());

  // Keep the previous checkpoint as a fallback; everything older goes.
  for (std::uint64_t e : list_numbered(opts_.dir, "checkpoint-", ".ckpt")) {
    if (e + 1 < new_epoch) {
      ::unlink(checkpoint_path(e).c_str());
    }
  }
  for (std::uint64_t e : list_numbered(opts_.dir, "wal-", ".log")) {
    if (e < new_epoch) {
      ::unlink(wal_path(e).c_str());
    }
  }
  obs::Logger::instance().log(obs::Level::kInfo, "checkpoint",
                              obs::Kv()
                                  .u64("epoch", new_epoch)
                                  .u64("last_lsn", last)
                                  .u64("prev_epoch", old_epoch));
  return Status::ok();
}

}  // namespace fgad::cloud
