#include "cloud/server.h"

#include <algorithm>
#include <cstdio>

#include "common/fsio.h"
#include "obs/cost.h"
#include "obs/flight_recorder.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fgad::cloud {

namespace proto = fgad::proto;
using proto::MsgType;

CloudServer::CloudServer(Options opts) : opts_(opts) {
  if (ThreadPool::resolve_threads(opts_.threads) > 1) {
    pool_ = std::make_unique<ThreadPool>(opts_.threads);
  }
}

Status CloudServer::outsource(std::uint64_t file_id, core::ModulationTree tree,
                              std::vector<FileStore::IngestItem> items) {
  if (files_.count(file_id) != 0) {
    return Status(Errc::kInvalidArgument, "server: file id already exists");
  }
  auto store = std::make_unique<FileStore>(tree.alg(), opts_.track_duplicates,
                                           opts_.enable_integrity,
                                           pool_.get());
  if (auto st = store->ingest(std::move(tree), std::move(items)); !st) {
    return st;
  }
  files_.emplace(file_id, std::move(store));
  return Status::ok();
}

Result<const FileStore*> CloudServer::get_file(std::uint64_t file_id) const {
  const auto it = files_.find(file_id);
  if (it == files_.end()) {
    return Error(Errc::kNotFound, "server: no such file");
  }
  return static_cast<const FileStore*>(it->second.get());
}

Result<FileStore*> CloudServer::get_file(std::uint64_t file_id) {
  const auto it = files_.find(file_id);
  if (it == files_.end()) {
    return Error(Errc::kNotFound, "server: no such file");
  }
  return it->second.get();
}

const FileStore* CloudServer::file(std::uint64_t file_id) const {
  const auto it = files_.find(file_id);
  return it == files_.end() ? nullptr : it->second.get();
}

FileStore* CloudServer::mutable_file(std::uint64_t file_id) {
  const auto it = files_.find(file_id);
  return it == files_.end() ? nullptr : it->second.get();
}

std::vector<std::uint64_t> CloudServer::file_ids() const {
  std::vector<std::uint64_t> ids;
  ids.reserve(files_.size());
  for (const auto& [id, store] : files_) {
    ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

Result<core::AccessInfo> CloudServer::access(std::uint64_t file_id,
                                             const proto::ItemRef& ref) const {
  auto file = get_file(file_id);
  if (!file) return file.error();
  auto slot = file.value()->resolve(ref);
  if (!slot) return slot.error();
  auto info = file.value()->access(slot.value());
  if (info && tamper_access_info) {
    tamper_access_info(info.value());
  }
  return info;
}

Status CloudServer::modify(std::uint64_t file_id, std::uint64_t item_id,
                           Bytes ct, std::uint64_t plain_size) {
  auto file = get_file(file_id);
  if (!file) return file.status();
  return file.value()->modify(item_id, std::move(ct), plain_size);
}

Result<core::DeleteInfo> CloudServer::delete_begin(
    std::uint64_t file_id, const proto::ItemRef& ref) const {
  auto file = get_file(file_id);
  if (!file) return file.error();
  auto slot = file.value()->resolve(ref);
  if (!slot) return slot.error();
  auto info = file.value()->delete_begin(slot.value());
  if (info && tamper_delete_info) {
    tamper_delete_info(info.value());
  }
  return info;
}

Status CloudServer::delete_commit(std::uint64_t file_id,
                                  const core::DeleteCommit& c) {
  auto file = get_file(file_id);
  if (!file) return file.status();
  return file.value()->delete_commit(c);
}

Result<core::DeleteManyInfo> CloudServer::delete_many_begin(
    std::uint64_t file_id, const std::vector<proto::ItemRef>& refs) const {
  auto file = get_file(file_id);
  if (!file) return file.error();
  std::vector<std::uint32_t> slots;
  slots.reserve(refs.size());
  for (const proto::ItemRef& ref : refs) {
    auto slot = file.value()->resolve(ref);
    if (!slot) return slot.error();
    slots.push_back(slot.value());
  }
  auto info = file.value()->delete_many_begin(slots);
  if (info && tamper_delete_many_info) {
    tamper_delete_many_info(info.value());
  }
  return info;
}

Status CloudServer::delete_many_commit(std::uint64_t file_id,
                                       const core::DeleteManyCommit& c) {
  auto file = get_file(file_id);
  if (!file) return file.status();
  return file.value()->delete_many_commit(c);
}

Result<core::InsertInfo> CloudServer::insert_begin(
    std::uint64_t file_id) const {
  auto file = get_file(file_id);
  if (!file) return file.error();
  core::InsertInfo info = file.value()->insert_begin();
  if (tamper_insert_info) {
    tamper_insert_info(info);
  }
  return info;
}

Status CloudServer::insert_commit(std::uint64_t file_id,
                                  const core::InsertCommit& c) {
  auto file = get_file(file_id);
  if (!file) return file.status();
  return file.value()->insert_commit(c);
}

Result<Bytes> CloudServer::fetch_tree(std::uint64_t file_id) const {
  auto file = get_file(file_id);
  if (!file) return file.error();
  return file.value()->serialized_tree();
}

Result<proto::AuditResp> CloudServer::audit(std::uint64_t file_id,
                                            const proto::AuditReq& req) const {
  auto file = get_file(file_id);
  if (!file) return file.error();
  const FileStore& store = *file.value();
  if (!store.integrity_enabled()) {
    return Error(Errc::kUnsupported, "server: integrity disabled");
  }
  proto::AuditResp resp;
  resp.root = store.integrity_root();
  resp.entries.reserve(req.targets.size());
  for (std::uint64_t target : req.targets) {
    Result<std::uint32_t> slot =
        req.by_leaf
            ? (store.tree().is_leaf(target)
                   ? Result<std::uint32_t>(static_cast<std::uint32_t>(
                         store.tree().item_slot(target)))
                   : Result<std::uint32_t>(
                         Error(Errc::kNotFound, "server: not a leaf")))
            : store.resolve(proto::ItemRef::id(target));
    if (!slot) {
      return slot.error();
    }
    auto entry = store.audit_entry(slot.value(), req.include_ciphertext);
    if (!entry) {
      return entry.error();
    }
    resp.entries.push_back(std::move(entry).value());
  }
  return resp;
}

Status CloudServer::drop_file(std::uint64_t file_id) {
  if (files_.erase(file_id) == 0) {
    return Status(Errc::kNotFound, "server: no such file");
  }
  return Status::ok();
}

void CloudServer::kv_put(std::uint64_t table, std::uint64_t key, Bytes value) {
  tables_[table][key] = std::move(value);
}

Result<Bytes> CloudServer::kv_get(std::uint64_t table,
                                  std::uint64_t key) const {
  const auto t = tables_.find(table);
  if (t == tables_.end()) {
    return Error(Errc::kNotFound, "server: no such table");
  }
  const auto it = t->second.find(key);
  if (it == t->second.end()) {
    return Error(Errc::kNotFound, "server: no such key");
  }
  return it->second;
}

Status CloudServer::kv_delete(std::uint64_t table, std::uint64_t key) {
  const auto t = tables_.find(table);
  if (t == tables_.end() || t->second.erase(key) == 0) {
    return Status(Errc::kNotFound, "server: no such key");
  }
  return Status::ok();
}

std::size_t CloudServer::kv_size(std::uint64_t table) const {
  const auto t = tables_.find(table);
  return t == tables_.end() ? 0 : t->second.size();
}

// ---- persistence --------------------------------------------------------------

namespace {
constexpr std::uint32_t kImageMagic = 0x46474144;  // "FGAD"
constexpr std::uint16_t kImageVersion = 1;
}  // namespace

void CloudServer::save(proto::Writer& w) const {
  w.u32(kImageMagic);
  w.u16(kImageVersion);
  // Files, ordered by id so images are deterministic.
  std::vector<std::uint64_t> file_ids;
  file_ids.reserve(files_.size());
  for (const auto& [id, store] : files_) {
    file_ids.push_back(id);
  }
  std::sort(file_ids.begin(), file_ids.end());
  w.u64(file_ids.size());
  for (std::uint64_t id : file_ids) {
    w.u64(id);
    files_.at(id)->serialize(w);
  }
  // Blob tables.
  std::vector<std::uint64_t> table_ids;
  table_ids.reserve(tables_.size());
  for (const auto& [id, table] : tables_) {
    table_ids.push_back(id);
  }
  std::sort(table_ids.begin(), table_ids.end());
  w.u64(table_ids.size());
  for (std::uint64_t id : table_ids) {
    const auto& table = tables_.at(id);
    w.u64(id);
    w.u64(table.size());
    for (const auto& [key, value] : table) {
      w.u64(key);
      w.bytes(value);
    }
  }
}

Result<std::unique_ptr<CloudServer>> CloudServer::load(proto::Reader& r,
                                                       Options opts) {
  if (r.u32() != kImageMagic || r.u16() != kImageVersion) {
    return Error(Errc::kDecodeError, "server image: bad magic/version");
  }
  auto server_ptr = std::make_unique<CloudServer>(opts);
  CloudServer& server = *server_ptr;
  const std::uint64_t n_files = r.u64();
  if (!r.ok() || n_files > (1ull << 32)) {
    return Error(Errc::kDecodeError, "server image: bad file count");
  }
  for (std::uint64_t i = 0; i < n_files; ++i) {
    const std::uint64_t id = r.u64();
    auto store = FileStore::deserialize(r, opts.track_duplicates,
                                        opts.enable_integrity,
                                        server.pool_.get());
    if (!store) {
      return store.error();
    }
    server.files_.emplace(
        id, std::make_unique<FileStore>(std::move(store).value()));
  }
  const std::uint64_t n_tables = r.u64();
  if (!r.ok() || n_tables > (1ull << 32)) {
    return Error(Errc::kDecodeError, "server image: bad table count");
  }
  for (std::uint64_t t = 0; t < n_tables; ++t) {
    const std::uint64_t table_id = r.u64();
    const std::uint64_t n_keys = r.u64();
    if (!r.ok() || n_keys > (1ull << 32)) {
      return Error(Errc::kDecodeError, "server image: bad key count");
    }
    auto& table = server.tables_[table_id];
    for (std::uint64_t k = 0; k < n_keys; ++k) {
      const std::uint64_t key = r.u64();
      Bytes value = r.bytes();
      if (!r.ok()) {
        return Error(Errc::kDecodeError, "server image: truncated table");
      }
      table.emplace(key, std::move(value));
    }
  }
  return server_ptr;
}

Status CloudServer::save_to_file(const std::string& path) const {
  proto::Writer w;
  save(w);
  // Atomic + durable: a crash mid-save leaves the previous image intact.
  return fsio::atomic_write_file(path, w.data());
}

Result<std::unique_ptr<CloudServer>> CloudServer::load_from_file(
    const std::string& path, Options opts) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Error(Errc::kIoError, "server image: cannot open " + path);
  }
  Bytes data;
  std::uint8_t buf[1 << 16];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    data.insert(data.end(), buf, buf + got);
  }
  std::fclose(f);
  proto::Reader r(data);
  auto server = load(r, opts);
  if (server && !r.finish()) {
    return Error(Errc::kDecodeError, "server image: trailing bytes");
  }
  return server;
}

// ---- wire dispatcher --------------------------------------------------------

namespace {
Bytes error_frame(const Error& e) {
  proto::ErrorMsg msg;
  msg.code = e.code;
  msg.message = e.message;
  return msg.to_frame();
}

Bytes status_frame(const Status& st, MsgType ok_type) {
  return st ? proto::empty_frame(ok_type) : error_frame(st.error());
}

/// Malformed request payload: keep the decoder's detail in the reply
/// (prefixed with the message kind so the client knows which decode
/// failed) and count it.
Bytes decode_error_frame(MsgType t, const Error& e) {
  static obs::Counter& decode_errors = obs::Registry::instance().counter(
      "fgad_server_rpc_decode_errors_total");
  decode_errors.inc();
  return error_frame(
      Error(e.code, std::string(proto::msg_type_name(t)) + ": " + e.message));
}

/// One audit-log line per deletion-relevant RPC (delete/insert/re-key/
/// modify/drop), carrying the wire request id when the client sent one.
void audit_rpc(const char* op, std::uint64_t file_id, std::uint64_t item,
               std::size_t path_len, std::size_t cut_size,
               const Status& outcome) {
  obs::AuditLog::Entry e;
  e.op = op;
  e.request_id = obs::current_request_id();
  e.file_id = file_id;
  e.item = item;
  e.path_len = path_len;
  e.cut_size = cut_size;
  // When the durability layer bracketed this apply, stamp the line with
  // the fencing term and commit LSN so the deletion's evidence names one
  // primary incarnation (DESIGN.md §19).
  e.term = obs::AuditLog::commit_term();
  e.lsn = obs::AuditLog::commit_lsn();
  obs::AuditLog::instance().record(e, outcome);
}

/// Non-zero CostLedger buckets as wire timing entries (kind = CostKind
/// ordinal), the payload of a kTaggedEnvelopeV2 response trailer.
std::vector<proto::TimingEntry> timings_of(
    const obs::CostLedger::Breakdown& b) {
  std::vector<proto::TimingEntry> out;
  for (std::size_t i = 0; i < b.ns.size(); ++i) {
    if (b.ns[i] != 0) {
      out.push_back({static_cast<std::uint8_t>(i), b.ns[i]});
    }
  }
  return out;
}

// Streaming responses (FetchItems, KvGetRange) stop adding entries once
// their payload reaches this soft budget and set `more` instead, keeping
// every response frame far below net::kMaxFrameSize regardless of how
// large the stored file is (DESIGN.md §11). Clients already page on `more`.
constexpr std::size_t kSoftResponseBudget = 64u << 20;  // 64 MiB

}  // namespace

Bytes CloudServer::handle(BytesView request) {
  static obs::Counter& rpcs =
      obs::Registry::instance().counter("fgad_server_rpcs_total");
  static obs::Counter& errors =
      obs::Registry::instance().counter("fgad_server_rpc_errors_total");
  static obs::Histogram& handle_ns =
      obs::Registry::instance().histogram("fgad_server_handle_ns");
  obs::ScopedTimer timer(handle_ns);
  rpcs.inc();

  // A tagged request adopts the client's request id for the duration of
  // the handler (audit lines, slow-op warnings) and is answered with a
  // response tagged with the same id. Untagged requests are handled
  // byte-identically to the pre-tagging protocol.
  const auto tag = proto::open_tagged(request);
  const std::uint64_t rid = tag ? tag->request_id : 0;
  const BytesView inner = tag ? tag->inner : request;
  const auto inner_type = proto::peek_type(inner);
  const std::uint64_t type_ord =
      inner_type ? static_cast<std::uint64_t>(*inner_type) : 0;
  obs::FlightRecorder::instance().record(obs::FrEvent::kRpcStart, rid,
                                         type_ord);
  Bytes resp;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (tag) {
      obs::RequestScope scope(rid);
      // With --trace-capture on, collect this handler's span tree and
      // park it in the TraceStore under the client's rid, where
      // GET /trace.json?rid=... can fetch it for Perfetto. When an outer
      // layer (DurableServer) already opened a capture for this rid —
      // so its WAL/fsync spans share the timeline — this layer only
      // contributes spans and leaves ownership (put + stop) to it. A V2
      // tag carries the client's RPC span id; depth-0 spans here parent
      // under it so the stitched document forms one tree.
      const bool own_trace = rid != 0 &&
                             obs::TraceStore::instance().capture_enabled() &&
                             !obs::trace_active();
      if (own_trace) {
        obs::trace_begin(rid, tag->span_id);
      }
      {
        obs::Span rpc_span(inner_type ? proto::msg_type_name(*inner_type)
                                      : "decode-error");
        obs::ScopedCost apply_cost(obs::CostKind::kApply);
        resp = handle_locked(inner);
      }
      if (own_trace) {
        obs::TraceStore::instance().put(rid, obs::trace_render_chrome_json());
        obs::trace_stop();
      }
    } else {
      resp = handle_locked(inner);
    }
  }
  if (proto::peek_type(resp) == proto::MsgType::kError) {
    errors.inc();
  }
  obs::FlightRecorder::instance().record(obs::FrEvent::kRpcEnd, rid, type_ord,
                                         timer.elapsed_ns());
  if (inner_type) {
    obs::Logger::instance().slow_op(proto::msg_type_name(*inner_type),
                                    timer.elapsed_ns(), rid);
  }
  if (!tag) {
    return resp;
  }
  if (!tag->v2) {
    return proto::seal_tagged(rid, resp);
  }
  // V2 responses echo the client's span ids and carry the server-timing
  // trailer: whatever the CostLedger accumulated for this rid so far
  // (apply; plus wal_append when the durability layer staged it before
  // dispatching here). The durability layer reseals afterwards to fold
  // in fsync/replication waits that happen after this return.
  return proto::seal_tagged_v2(rid, tag->span_id, tag->parent_span_id,
                               timings_of(obs::CostLedger::instance().take(rid)),
                               resp);
}

Bytes CloudServer::handle_locked(BytesView request) {
  auto env = proto::open_message(request);
  if (!env) {
    static obs::Counter& decode_errors = obs::Registry::instance().counter(
        "fgad_server_rpc_decode_errors_total");
    decode_errors.inc();
    return error_frame(env.error());
  }
  obs::Registry::instance()
      .counter(std::string("fgad_server_rpc_") +
               proto::msg_type_name(env.value().type) + "_total")
      .inc();
  proto::Reader r(env.value().payload);

  switch (env.value().type) {
    case MsgType::kOutsourceReq: {
      auto req = proto::OutsourceReq::from(r);
      if (!req) return decode_error_frame(env.value().type, req.error());
      proto::Reader tr(req.value().tree_blob);
      auto tree = core::ModulationTree::deserialize(
          tr, core::ModulationTree::Config{crypto::HashAlg::kSha1,
                                           opts_.track_duplicates});
      if (!tree) return decode_error_frame(env.value().type, tree.error());
      if (auto st = tr.finish(); !st) {
        return decode_error_frame(env.value().type, st.error());
      }
      std::vector<FileStore::IngestItem> items;
      items.reserve(req.value().items.size());
      for (auto& it : req.value().items) {
        items.push_back(FileStore::IngestItem{
            it.item_id, std::move(it.ciphertext), it.plain_size});
      }
      const std::size_t n_items = items.size();
      Status st = outsource(req.value().file_id, std::move(tree).value(),
                            std::move(items));
      audit_rpc("outsource", req.value().file_id, n_items, 0, 0, st);
      return status_frame(st, MsgType::kOutsourceResp);
    }

    case MsgType::kAccessReq: {
      auto req = proto::AccessReq::from(r);
      if (!req) return decode_error_frame(env.value().type, req.error());
      static obs::Histogram& access_ns =
          obs::Registry::instance().histogram("fgad_server_access_ns");
      obs::ScopedTimer timer(access_ns);
      auto info = access(req.value().file_id, req.value().ref);
      if (!info) return error_frame(info.error());
      proto::AccessResp resp{std::move(info).value()};
      return resp.to_frame();
    }

    case MsgType::kModifyReq: {
      auto req = proto::ModifyReq::from(r);
      if (!req) return decode_error_frame(env.value().type, req.error());
      Status st = modify(req.value().file_id, req.value().item_id,
                         std::move(req.value().ciphertext),
                         req.value().plain_size);
      audit_rpc("modify", req.value().file_id, req.value().item_id, 0, 0, st);
      return status_frame(st, MsgType::kModifyResp);
    }

    case MsgType::kDeleteBeginReq: {
      auto req = proto::DeleteBeginReq::from(r);
      if (!req) return decode_error_frame(env.value().type, req.error());
      static obs::Histogram& delete_begin_ns =
          obs::Registry::instance().histogram("fgad_server_delete_begin_ns");
      obs::ScopedTimer timer(delete_begin_ns);
      auto info = delete_begin(req.value().file_id, req.value().ref);
      audit_rpc("delete_begin", req.value().file_id,
                info ? info.value().item_id : req.value().ref.value,
                info ? info.value().path.nodes.size() : 0,
                info ? info.value().cut.size() : 0, info.status());
      if (!info) return error_frame(info.error());
      proto::DeleteBeginResp resp{std::move(info).value()};
      return resp.to_frame();
    }

    case MsgType::kDeleteCommitReq: {
      auto req = proto::DeleteCommitReq::from(r);
      if (!req) return decode_error_frame(env.value().type, req.error());
      static obs::Counter& deletes =
          obs::Registry::instance().counter("fgad_server_deletes_total");
      static obs::Histogram& delete_commit_ns =
          obs::Registry::instance().histogram("fgad_server_delete_commit_ns");
      obs::ScopedTimer timer(delete_commit_ns);
      const core::DeleteCommit& commit = req.value().commit;
      Status st = delete_commit(req.value().file_id, commit);
      // The commit IS the re-key: one delta per cut node, path one longer.
      audit_rpc("delete_commit", req.value().file_id, commit.leaf,
                commit.deltas.size() + 1, commit.deltas.size(), st);
      if (st) deletes.inc();
      return status_frame(st, MsgType::kDeleteCommitResp);
    }

    case MsgType::kDeleteManyBeginReq: {
      auto req = proto::DeleteManyBeginReq::from(r);
      if (!req) return decode_error_frame(env.value().type, req.error());
      static obs::Histogram& begin_ns = obs::Registry::instance().histogram(
          "fgad_server_delete_many_begin_ns");
      obs::ScopedTimer timer(begin_ns);
      auto info = delete_many_begin(req.value().file_id, req.value().refs);
      audit_rpc("delete_many_begin", req.value().file_id,
                req.value().refs.size(),
                info ? info.value().targets.size() : 0,
                info ? info.value().cut.size() : 0, info.status());
      if (!info) return error_frame(info.error());
      proto::DeleteManyBeginResp resp{std::move(info).value()};
      return resp.to_frame();
    }

    case MsgType::kDeleteManyCommitReq: {
      auto req = proto::DeleteManyCommitReq::from(r);
      if (!req) return decode_error_frame(env.value().type, req.error());
      static obs::Counter& bulk_deletes = obs::Registry::instance().counter(
          "fgad_server_bulk_deletes_total");
      static obs::Counter& bulk_items = obs::Registry::instance().counter(
          "fgad_server_bulk_deleted_items_total");
      static obs::Histogram& commit_ns = obs::Registry::instance().histogram(
          "fgad_server_delete_many_commit_ns");
      obs::ScopedTimer timer(commit_ns);
      const core::DeleteManyCommit& commit = req.value().commit;
      Status st = delete_many_commit(req.value().file_id, commit);
      // One merged cut, one key rotation, m items (DESIGN.md §16).
      audit_rpc("delete_many_commit", req.value().file_id,
                commit.leaves.size(), commit.relocs.size(),
                commit.deltas.size(), st);
      if (st) {
        bulk_deletes.inc();
        bulk_items.inc(commit.leaves.size());
      }
      return status_frame(st, MsgType::kDeleteManyCommitResp);
    }

    case MsgType::kInsertBeginReq: {
      auto req = proto::InsertBeginReq::from(r);
      if (!req) return decode_error_frame(env.value().type, req.error());
      auto info = insert_begin(req.value().file_id);
      audit_rpc("insert_begin", req.value().file_id, 0,
                info ? info.value().q_path.nodes.size() : 0, 0,
                info.status());
      if (!info) return error_frame(info.error());
      proto::InsertBeginResp resp{std::move(info).value()};
      return resp.to_frame();
    }

    case MsgType::kInsertCommitReq: {
      auto req = proto::InsertCommitReq::from(r);
      if (!req) return decode_error_frame(env.value().type, req.error());
      static obs::Counter& inserts =
          obs::Registry::instance().counter("fgad_server_inserts_total");
      static obs::Histogram& insert_commit_ns =
          obs::Registry::instance().histogram("fgad_server_insert_commit_ns");
      obs::ScopedTimer timer(insert_commit_ns);
      Status st = insert_commit(req.value().file_id, req.value().commit);
      audit_rpc("insert_commit", req.value().file_id,
                req.value().commit.item_id, 0, 0, st);
      if (st) inserts.inc();
      return status_frame(st, MsgType::kInsertCommitResp);
    }

    case MsgType::kFetchTreeReq: {
      auto req = proto::FetchTreeReq::from(r);
      if (!req) return decode_error_frame(env.value().type, req.error());
      auto blob = fetch_tree(req.value().file_id);
      if (!blob) return error_frame(blob.error());
      proto::FetchTreeResp resp{std::move(blob).value()};
      return resp.to_frame();
    }

    case MsgType::kFetchItemsReq: {
      auto req = proto::FetchItemsReq::from(r);
      if (!req) return decode_error_frame(env.value().type, req.error());
      auto file = get_file(req.value().file_id);
      if (!file) return error_frame(file.error());
      const ItemStore& items = file.value()->items();
      proto::FetchItemsResp resp;
      auto slot = items.slot_at(req.value().start_ordinal);
      std::uint32_t cur = slot ? *slot : ItemStore::kNoSlot;
      const std::uint32_t limit = req.value().max_count == 0
                                      ? ~std::uint32_t{0}
                                      : req.value().max_count;
      std::size_t resp_bytes = 0;
      while (cur != ItemStore::kNoSlot && resp.items.size() < limit &&
             resp_bytes < kSoftResponseBudget) {
        const ItemStore::Record& rec = items.at(cur);
        resp_bytes += rec.ciphertext.size() + 32;
        resp.items.push_back(
            proto::FetchItemsResp::Entry{rec.item_id, rec.leaf, rec.ciphertext});
        cur = items.next_of(cur);
      }
      resp.more = cur != ItemStore::kNoSlot;
      return resp.to_frame();
    }

    case MsgType::kListItemsReq: {
      auto req = proto::ListItemsReq::from(r);
      if (!req) return decode_error_frame(env.value().type, req.error());
      auto file = get_file(req.value().file_id);
      if (!file) return error_frame(file.error());
      proto::ListItemsResp resp;
      resp.ids = file.value()->items().ids_in_order();
      return resp.to_frame();
    }

    case MsgType::kDropFileReq: {
      auto req = proto::DropFileReq::from(r);
      if (!req) return decode_error_frame(env.value().type, req.error());
      Status st = drop_file(req.value().file_id);
      audit_rpc("drop_file", req.value().file_id, 0, 0, 0, st);
      return status_frame(st, MsgType::kDropFileResp);
    }

    case MsgType::kStatReq: {
      auto req = proto::StatReq::from(r);
      if (!req) return decode_error_frame(env.value().type, req.error());
      auto file = get_file(req.value().file_id);
      if (!file) return error_frame(file.error());
      proto::StatResp resp;
      resp.n_items = file.value()->item_count();
      resp.node_count = file.value()->tree().node_count();
      resp.tree_bytes = file.value()->tree_bytes();
      return resp.to_frame();
    }

    case MsgType::kAuditReq: {
      auto req = proto::AuditReq::from(r);
      if (!req) return decode_error_frame(env.value().type, req.error());
      static obs::Counter& audits =
          obs::Registry::instance().counter("fgad_server_audits_total");
      static obs::Histogram& audit_ns =
          obs::Registry::instance().histogram("fgad_server_audit_ns");
      obs::ScopedTimer timer(audit_ns);
      audits.inc();
      auto resp = audit(req.value().file_id, req.value());
      if (!resp) return error_frame(resp.error());
      return resp.value().to_frame();
    }

    case MsgType::kKvPutReq: {
      auto req = proto::KvPutReq::from(r);
      if (!req) return decode_error_frame(env.value().type, req.error());
      kv_put(req.value().table, req.value().key, std::move(req.value().value));
      return proto::empty_frame(MsgType::kKvPutResp);
    }

    case MsgType::kKvGetReq: {
      auto req = proto::KvGetReq::from(r);
      if (!req) return decode_error_frame(env.value().type, req.error());
      auto v = kv_get(req.value().table, req.value().key);
      proto::KvGetResp resp;
      resp.found = v.is_ok();
      if (v) {
        resp.value = std::move(v).value();
      }
      return resp.to_frame();
    }

    case MsgType::kKvDeleteReq: {
      auto req = proto::KvDeleteReq::from(r);
      if (!req) return decode_error_frame(env.value().type, req.error());
      return status_frame(kv_delete(req.value().table, req.value().key),
                          MsgType::kKvDeleteResp);
    }

    case MsgType::kKvGetRangeReq: {
      auto req = proto::KvGetRangeReq::from(r);
      if (!req) return decode_error_frame(env.value().type, req.error());
      proto::KvGetRangeResp resp;
      const auto t = tables_.find(req.value().table);
      if (t != tables_.end()) {
        auto it = t->second.lower_bound(req.value().start_key);
        const std::uint32_t limit = req.value().max_count == 0
                                        ? ~std::uint32_t{0}
                                        : req.value().max_count;
        std::size_t resp_bytes = 0;
        while (it != t->second.end() && resp.entries.size() < limit &&
               resp_bytes < kSoftResponseBudget) {
          resp_bytes += it->second.size() + 16;
          resp.entries.push_back(
              proto::KvGetRangeResp::Entry{it->first, it->second});
          ++it;
        }
        resp.more = it != t->second.end();
      }
      return resp.to_frame();
    }

    case MsgType::kKvPutBatchReq: {
      auto req = proto::KvPutBatchReq::from(r);
      if (!req) return decode_error_frame(env.value().type, req.error());
      for (auto& e : req.value().entries) {
        kv_put(req.value().table, e.key, std::move(e.value));
      }
      return proto::empty_frame(MsgType::kKvPutBatchResp);
    }

    case MsgType::kReplAppend:
    case MsgType::kReplAck:
    case MsgType::kReplSnapshot:
    case MsgType::kReplHeartbeat:
      return error_frame(Error(
          Errc::kUnsupported,
          "server: replication requires a durable server (see DurableServer)"));

    default:
      return error_frame(
          Error(Errc::kUnsupported,
                "server: unknown message type " +
                    std::to_string(static_cast<unsigned>(env.value().type))));
  }
}

}  // namespace fgad::cloud
