// Quickstart: the smallest complete use of the library.
//
// Outsources a file of items to an (in-process) cloud server, accesses one,
// assuredly deletes another, and shows that the deletion is fine-grained:
// nothing else was re-encrypted, and the deleted item is gone for good.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "client/client.h"
#include "cloud/server.h"
#include "net/transport.h"

int main() {
  using namespace fgad;

  // --- the two parties -----------------------------------------------------
  // Party 2: the cloud. It stores ciphertexts and public modulators only.
  cloud::CloudServer server;
  net::DirectChannel channel(
      [&server](BytesView req) { return server.handle(req); });

  // Party 1: the client. It will hold exactly ONE secret per file.
  crypto::SystemRandom rnd;
  client::Client client(channel, rnd);

  // --- outsource a file -----------------------------------------------------
  std::vector<Bytes> records = {
      to_bytes("alice: salary 101k"),  to_bytes("bob: salary 96k"),
      to_bytes("carol: salary 120k"),  to_bytes("dave: salary 87k"),
      to_bytes("erin: salary 104k"),   to_bytes("frank: salary 93k"),
      to_bytes("grace: salary 110k"),  to_bytes("heidi: salary 99k"),
  };
  auto fh = client.outsource(/*file_id=*/1, records);
  if (!fh) {
    std::printf("outsource failed: %s\n", fh.status().to_string().c_str());
    return 1;
  }
  std::printf("outsourced %zu records; client keeps one %zu-byte master key\n",
              records.size(), fh.value().key.value().size());

  // --- access ---------------------------------------------------------------
  auto rec = client.access(fh.value(), proto::ItemRef::ordinal(2));
  std::printf("record #2 reads: \"%s\"\n", to_string(rec.value()).c_str());

  // --- fine-grained assured deletion ---------------------------------------
  // Delete dave's record (item id 3). The client picks a fresh master key,
  // sends O(log n) modulator deltas, and destroys the old key. No other
  // record is touched or re-encrypted.
  if (auto st = client.erase_item(fh.value(), proto::ItemRef::id(3)); !st) {
    std::printf("delete failed: %s\n", st.to_string().c_str());
    return 1;
  }
  std::printf("deleted record id 3 (dave)\n");

  // The deleted record is gone...
  auto gone = client.access(fh.value(), proto::ItemRef::id(3));
  std::printf("accessing deleted record: %s\n",
              gone.is_ok() ? "STILL THERE (bug!)"
                           : gone.status().to_string().c_str());

  // ...and everything else still decrypts under the (rotated) master key.
  auto ids = client.list_items(fh.value());
  for (std::uint64_t id : ids.value()) {
    auto got = client.access(fh.value(), proto::ItemRef::id(id));
    if (!got) {
      std::printf("record %llu unreadable: %s\n",
                  static_cast<unsigned long long>(id),
                  got.status().to_string().c_str());
      return 1;
    }
  }
  std::printf("all %zu surviving records still readable — nothing was "
              "re-encrypted\n",
              ids.value().size());

  // --- insert ---------------------------------------------------------------
  auto id = client.insert(fh.value(), to_bytes("ivan: salary 95k"));
  std::printf("inserted new record with unique id %llu\n",
              static_cast<unsigned long long>(id.value()));

  std::printf("done.\n");
  return 0;
}
