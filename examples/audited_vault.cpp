// Audited vault: assured deletion + the integrity substrate, together.
//
// A client outsources a vault of variable-size records, keeps (a) one
// master key and (b) one Merkle root, and from then on can
//   * spot-check that the cloud still possesses every record (PoR audit),
//   * fetch records with cryptographic proof they are the committed bytes,
//   * address records by plaintext byte offset (Section IV-C footnote 2),
//   * assuredly delete records while rolling its root forward trustlessly.
// A misbehaving server is shown being caught by the audit.
//
// Build & run:  ./build/examples/audited_vault
#include <cstdio>
#include <string>

#include "client/client.h"
#include "cloud/server.h"
#include "integrity/audit.h"

namespace {

using namespace fgad;

Bytes record(std::size_t i) {
  std::string s = "vault-record-" + std::to_string(i) + "|";
  s.append(20 + (i * 13) % 200, 'a' + static_cast<char>(i % 26));
  return to_bytes(s);
}

}  // namespace

int main() {
  cloud::CloudServer server;
  net::DirectChannel channel(
      [&server](BytesView req) { return server.handle(req); });
  crypto::SystemRandom rnd;
  client::Client client(channel, rnd);

  // --- outsource ------------------------------------------------------------
  const std::size_t n = 200;
  auto fh = client.outsource(1, n, record);
  if (!fh) {
    std::printf("outsource failed\n");
    return 1;
  }

  // Initialize the auditor trustlessly from our own sealed bytes.
  integrity::Auditor auditor(channel, crypto::HashAlg::kSha1, 1);
  {
    const auto* file = server.file(1);
    std::vector<std::pair<std::uint64_t, BytesView>> items;
    std::vector<const Bytes*> keep;
    for (std::uint64_t i = 0; i < n; ++i) {
      keep.push_back(
          &file->items().at(*file->items().find(i)).ciphertext);
      items.emplace_back(i, BytesView(*keep.back()));
    }
    auditor.init_from_items(items);
  }
  std::printf("outsourced %zu records; client state: one %zu-byte master key "
              "+ one %zu-byte Merkle root\n",
              n, fh.value().key.value().size(),
              auditor.expected_root().size());

  // --- possession audit -------------------------------------------------------
  if (auto st = auditor.audit_random(16, rnd); st) {
    std::printf("PoR spot-check of 16 random records: PASS\n");
  } else {
    std::printf("audit failed unexpectedly: %s\n", st.to_string().c_str());
    return 1;
  }

  // --- verified fetch ---------------------------------------------------------
  auto proof_ct = auditor.fetch_verified(42);
  std::printf("verified fetch of record 42: %s (%zu ciphertext bytes, "
              "proof-checked against our root)\n",
              proof_ct.is_ok() ? "ok" : "FAILED",
              proof_ct.is_ok() ? proof_ct.value().size() : 0);

  // --- byte-offset access ------------------------------------------------------
  auto at_offset = client.access(fh.value(), proto::ItemRef::byte_offset(5000));
  std::printf("record covering plaintext offset 5000 starts with \"%.20s\"\n",
              to_string(at_offset.value()).c_str());

  // --- assured deletion with root tracking -------------------------------------
  for (std::uint64_t victim : {7ull, 42ull, 150ull}) {
    if (auto st = auditor.before_delete(victim); !st) {
      std::printf("auditor pre-delete failed: %s\n", st.to_string().c_str());
      return 1;
    }
    if (auto st = client.erase_item(fh.value(), proto::ItemRef::id(victim));
        !st) {
      std::printf("delete failed: %s\n", st.to_string().c_str());
      return 1;
    }
  }
  std::printf("deleted records 7, 42, 150; auditor root rolled forward "
              "(tracked vs server: %s)\n",
              auditor.expected_root() == server.file(1)->integrity_root()
                  ? "match"
                  : "MISMATCH (bug!)");
  if (auto st = auditor.audit_random(16, rnd); st) {
    std::printf("post-deletion audit: PASS (%zu records remain)\n",
                auditor.leaf_count());
  }

  // --- a malicious server is caught ---------------------------------------------
  // The cloud "restores" record 42's ciphertext from a backup after the
  // assured deletion (it cannot decrypt it — but it also can no longer even
  // *prove possession* of a consistent store).
  std::uint64_t corrupted_id;
  {
    // Tamper with a stored record behind the hash tree's back.
    auto* file = server.mutable_file(1);
    const auto slot = file->items().first();
    const auto& rec = file->items().at(slot);
    corrupted_id = rec.item_id;
    Bytes corrupted = rec.ciphertext;
    corrupted[corrupted.size() / 2] ^= 0x01;
    const_cast<cloud::ItemStore&>(file->items())
        .set_ciphertext(slot, corrupted, rec.plain_size);
  }
  // A spot-check catches a single corrupted record only probabilistically
  // (that is the PoR trade-off); a verified fetch of the record is certain.
  const std::uint64_t ids[] = {corrupted_id};
  const Status audit_after_tamper = auditor.audit_items(ids);
  std::printf("verified fetch after the server silently corrupts record "
              "%llu: %s\n",
              static_cast<unsigned long long>(corrupted_id),
              audit_after_tamper.is_ok()
                  ? "PASSED (bug!)"
                  : audit_after_tamper.to_string().c_str());

  std::printf("done.\n");
  return audit_after_tamper.is_ok() ? 1 : 0;
}
