// Employee roster: the paper's motivating scenario ("a retired employee
// record from a large roster") with the Section V two-level key scheme and
// an explicit post-deletion forensic attack.
//
// A company outsources several files (roster, payroll, reviews). The client
// device carries exactly ONE control key. When an employee retires, their
// single record is assuredly deleted. We then play the paper's worst-case
// adversary: full server history (pre-deletion snapshots included) plus the
// post-deletion control key — and show the record stays unrecoverable.
//
// Build & run:  ./build/examples/employee_roster
#include <cstdio>
#include <string>

#include "cloud/server.h"
#include "fskeys/meta.h"

namespace {

using namespace fgad;

Bytes roster_record(int i) {
  std::string s = "employee-" + std::to_string(i) +
                  "|dept=" + std::to_string(i % 7) +
                  "|ssn=123-45-" + std::to_string(6000 + i) + "|active";
  return to_bytes(s);
}

}  // namespace

int main() {
  cloud::CloudServer server;
  net::DirectChannel channel(
      [&server](BytesView req) { return server.handle(req); });
  crypto::SystemRandom rnd;
  client::Client client(channel, rnd);

  // One control key guards every file via the meta modulation tree.
  fskeys::FileSystemClient fs(client, /*meta_file_id=*/1);
  if (!fs.init()) {
    std::printf("meta init failed\n");
    return 1;
  }

  // --- build a small file system -------------------------------------------
  constexpr std::uint64_t kRoster = 10;
  constexpr std::uint64_t kPayroll = 11;
  constexpr std::uint64_t kReviews = 12;
  const int n_employees = 500;

  fs.create_file(kRoster, n_employees,
                 [](std::size_t i) { return roster_record(static_cast<int>(i)); });
  fs.create_file(kPayroll, n_employees, [](std::size_t i) {
    return to_bytes("pay|emp=" + std::to_string(i) + "|grade=" +
                    std::to_string(3 + i % 9));
  });
  fs.create_file(kReviews, 64, [](std::size_t i) {
    return to_bytes("review|" + std::to_string(i));
  });
  std::printf("outsourced 3 files (%d+%d+64 records); client secret state: "
              "one %zu-byte control key\n",
              n_employees, n_employees, fs.control_key().value().size());

  // --- employee 137 retires --------------------------------------------------
  // A server-side attacker has been watching the whole time: snapshot the
  // roster tree, the meta tree, and the victim's ciphertext BEFORE deletion.
  const std::uint64_t victim_ordinal = 137;
  Bytes victim_ct;
  Bytes roster_tree_before = server.fetch_tree(kRoster).value();
  Bytes meta_tree_before = server.fetch_tree(1).value();
  {
    const auto* file = server.file(kRoster);
    const auto slot = file->items().slot_at(victim_ordinal);
    victim_ct = file->items().at(*slot).ciphertext;
  }
  std::printf("\nattacker snapshots server state (trees + ciphertexts) "
              "before the deletion\n");

  if (auto st = fs.erase_item(kRoster, proto::ItemRef::ordinal(victim_ordinal));
      !st) {
    std::printf("deletion failed: %s\n", st.to_string().c_str());
    return 1;
  }
  std::printf("employee record #%llu assuredly deleted (file-tree delete + "
              "meta-tree key rotation)\n",
              static_cast<unsigned long long>(victim_ordinal));

  // --- the forensic attack ----------------------------------------------------
  // Now the attacker also seizes the client device: they get the CURRENT
  // control key. They try every key derivable from every snapshot.
  const crypto::Md stolen_control = fs.control_key().value();
  const auto& math = client.math();
  const auto& codec = client.codec();

  auto try_tree = [&](const Bytes& blob, const crypto::Md& key,
                      const Bytes& target) {
    proto::Reader r(blob);
    auto tree = core::ModulationTree::deserialize(
        r, core::ModulationTree::Config{crypto::HashAlg::kSha1, false});
    if (!tree) return false;
    for (core::NodeId v = 0; v < tree.value().node_count(); ++v) {
      if (!tree.value().is_leaf(v)) continue;
      const crypto::Md k = math.derive_key(key, tree.value().path_to(v),
                                           tree.value().leaf_mod(v));
      if (codec.open(k, target).is_ok()) return true;
    }
    return false;
  };

  // Attack 1: derive roster keys from the pre-deletion roster tree using
  // every master key recoverable from the meta tree under the stolen
  // control key. Step one of that chain is opening a meta entry:
  int meta_entries_opened = 0;
  {
    proto::Reader r(meta_tree_before);
    auto meta = core::ModulationTree::deserialize(
        r, core::ModulationTree::Config{crypto::HashAlg::kSha1, false});
    const auto* meta_file = server.file(1);
    for (core::NodeId v = 0; v < meta.value().node_count(); ++v) {
      if (!meta.value().is_leaf(v)) continue;
      const crypto::Md k =
          math.derive_key(stolen_control, meta.value().path_to(v),
                          meta.value().leaf_mod(v));
      for (auto slot = meta_file->items().first();
           slot != cloud::ItemStore::kNoSlot;
           slot = meta_file->items().next_of(slot)) {
        if (codec.open(k, meta_file->items().at(slot).ciphertext).is_ok()) {
          ++meta_entries_opened;
        }
      }
    }
  }
  std::printf("\nattack 1: pre-deletion meta tree + stolen control key -> "
              "%d old meta entries decrypted (expect 0: the control key "
              "rotated)\n",
              meta_entries_opened);

  // Attack 2: brute every current master key against the victim ciphertext
  // via both roster tree snapshots (the file master key also rotated).
  bool recovered = false;
  {
    // Even if the attacker somehow had the CURRENT roster master key, the
    // victim's modulator path is dead. Emulate the strongest version: walk
    // both snapshots with every key derivable from the stolen control key
    // through the CURRENT meta tree (i.e., the legitimate path).
    const auto* meta_file = server.file(1);
    for (auto slot = meta_file->items().first();
         slot != cloud::ItemStore::kNoSlot;
         slot = meta_file->items().next_of(slot)) {
      const auto& rec = meta_file->items().at(slot);
      const crypto::Md k = math.derive_key(
          stolen_control, meta_file->tree().path_to(rec.leaf),
          meta_file->tree().leaf_mod(rec.leaf));
      auto opened = codec.open(k, rec.ciphertext);
      if (!opened) continue;
      proto::Reader er(opened.value().plaintext);
      er.u64();
      const crypto::Md master = er.md();
      recovered |= try_tree(roster_tree_before, master, victim_ct);
      recovered |= try_tree(server.fetch_tree(kRoster).value(), master,
                            victim_ct);
    }
  }
  std::printf("attack 2: every reachable master key x every tree snapshot "
              "-> record recovered: %s\n", recovered ? "YES (bug!)" : "no");

  // --- business as usual -------------------------------------------------------
  auto still = fs.access(kRoster, proto::ItemRef::ordinal(100));
  std::printf("\nmeanwhile the company still reads record #100: \"%.40s...\"\n",
              to_string(still.value()).c_str());
  std::printf("and payroll is untouched: \"%s\"\n",
              to_string(fs.access(kPayroll, proto::ItemRef::ordinal(7)).value())
                  .c_str());

  std::printf("\ndone: fine-grained deletion, one client key, adversary "
              "defeated.\n");
  return recovered || meta_entries_opened != 0;
}
