// Mail archive: variable-size items, modification, and whole-file access.
//
// The paper's intro motivates deleting "an email from a mail backup file".
// This example outsources a mail archive whose messages vary in size,
// deletes one sensitive message, edits another in place (same data key,
// fresh IV), and finally fetches the whole archive — reporting the
// whole-file overhead ratios of Table III on real data.
//
// Build & run:  ./build/examples/mail_archive
#include <cstdio>
#include <string>

#include "client/client.h"
#include "cloud/server.h"
#include "net/transport.h"

namespace {

using namespace fgad;

Bytes make_mail(std::size_t i) {
  std::string body = "From: user" + std::to_string(i % 17) +
                     "@example.com\nSubject: message " + std::to_string(i) +
                     "\n\n";
  // Bodies vary from a one-liner to a few KB.
  const std::size_t body_len = 40 + (i * 97) % 3500;
  while (body.size() < body_len) {
    body += "lorem ipsum dolor sit amet ";
  }
  return to_bytes(body);
}

}  // namespace

int main() {
  cloud::CloudServer server;
  net::DirectChannel direct(
      [&server](BytesView req) { return server.handle(req); });
  net::CountingChannel channel(direct);
  crypto::SystemRandom rnd;
  client::Client client(channel, rnd);

  // --- outsource the archive -------------------------------------------------
  const std::size_t n_mails = 1000;
  auto fh = client.outsource(/*file_id=*/1, n_mails, make_mail);
  if (!fh) {
    std::printf("outsource failed\n");
    return 1;
  }
  std::printf("outsourced %zu mails (variable sizes, %s on the server)\n",
              n_mails,
              [&] {
                const auto* f = server.file(1);
                const double b = static_cast<double>(
                    f->items().ciphertext_bytes());
                char buf[32];
                std::snprintf(buf, sizeof(buf), "%.1f KB", b / 1024.0);
                return std::string(buf);
              }()
                  .c_str());

  // --- delete one sensitive message -------------------------------------------
  const std::uint64_t sensitive = 666;
  channel.reset();
  if (auto st = client.erase_item(fh.value(), proto::ItemRef::id(sensitive));
      !st) {
    std::printf("delete failed: %s\n", st.to_string().c_str());
    return 1;
  }
  std::printf("deleted mail %llu; the deletion exchange moved %.2f KB "
              "(tree has %zu leaves)\n",
              static_cast<unsigned long long>(sensitive),
              static_cast<double>(channel.total_bytes()) / 1024.0,
              server.file(1)->tree().leaf_count());

  // --- modify another message ---------------------------------------------------
  if (auto st = client.modify(fh.value(), 42,
                              to_bytes("From: user8@example.com\nSubject: "
                                       "message 42\n\n[redacted]"));
      !st) {
    std::printf("modify failed: %s\n", st.to_string().c_str());
    return 1;
  }
  auto edited = client.access(fh.value(), proto::ItemRef::id(42));
  std::printf("mail 42 edited in place; now ends with \"%s\"\n",
              to_string(edited.value()).substr(
                  to_string(edited.value()).size() - 10).c_str());

  // --- whole-file access (Table III on live data) -----------------------------
  channel.reset();
  auto fetched = client.fetch_all(fh.value());
  if (!fetched) {
    std::printf("fetch_all failed\n");
    return 1;
  }
  const auto& f = fetched.value();
  std::printf("\nwhole-archive fetch: %zu mails, %.1f KB of ciphertext, "
              "%.1f KB of modulation tree\n",
              f.items.size(), static_cast<double>(f.file_bytes) / 1024.0,
              static_cast<double>(f.tree_bytes) / 1024.0);
  // (Table III's <1% / <0.3% thresholds assume 4 KB items; mails here
  // average ~1.8 KB, so the tree is proportionally larger.)
  std::printf("  comm overhead ratio: %.3f%%   (tree bytes / archive bytes)\n",
              100.0 * static_cast<double>(f.tree_bytes) /
                  static_cast<double>(f.file_bytes));
  std::printf("  comp overhead ratio: %.3f%%   (key derivation vs decrypt)\n",
              100.0 * f.key_derive_seconds / f.decrypt_seconds);

  // The deleted mail is not in the archive; everything else is.
  for (const auto& [id, plaintext] : f.items) {
    if (id == sensitive) {
      std::printf("deleted mail shipped back?! bug\n");
      return 1;
    }
  }
  std::printf("deleted mail absent from the fetched archive, %zu others "
              "intact.\n",
              f.items.size());
  return 0;
}
