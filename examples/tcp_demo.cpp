// TCP demo: the client/server split over a real socket, mirroring the
// paper's lab-client / EC2-server deployment (here on the loopback
// interface; point the client at any host running the server side).
//
// Build & run:  ./build/examples/tcp_demo
#include <cstdio>

#include "client/client.h"
#include "cloud/server.h"
#include "net/tcp.h"

int main() {
  using namespace fgad;

  // --- the cloud side: a TCP server wrapping CloudServer ---------------------
  cloud::CloudServer cloud;
  auto tcp_result = net::TcpServer::create(
      /*port=*/0, [&cloud](BytesView req) { return cloud.handle(req); });
  if (!tcp_result) {
    std::printf("failed to start TCP server: %s\n",
                tcp_result.status().to_string().c_str());
    return 1;
  }
  net::TcpServer& tcp = *tcp_result.value();
  std::printf("cloud server listening on 127.0.0.1:%u\n", tcp.port());

  // --- the client side ---------------------------------------------------------
  auto conn = net::TcpChannel::connect("127.0.0.1", tcp.port());
  if (!conn) {
    std::printf("connect failed: %s\n", conn.status().to_string().c_str());
    return 1;
  }
  net::CountingChannel channel(*conn.value());
  crypto::SystemRandom rnd;
  client::Client client(channel, rnd);
  std::printf("client connected\n");

  // Outsource a file over the wire.
  const std::size_t n = 2000;
  auto fh = client.outsource(1, n, [](std::size_t i) {
    Bytes b(64, static_cast<std::uint8_t>(i));
    return b;
  });
  if (!fh) {
    std::printf("outsource failed\n");
    return 1;
  }
  std::printf("outsourced %zu items over TCP (%.2f MB on the wire)\n", n,
              static_cast<double>(channel.total_bytes()) / (1024.0 * 1024.0));

  // A few operations, with per-op byte counts.
  channel.reset();
  auto got = client.access(fh.value(), proto::ItemRef::id(1234));
  std::printf("access: ok=%d, %llu bytes exchanged\n", got.is_ok(),
              static_cast<unsigned long long>(channel.total_bytes()));

  channel.reset();
  auto st = client.erase_item(fh.value(), proto::ItemRef::id(777));
  std::printf("assured delete: ok=%d, %llu bytes exchanged (O(log n))\n",
              st.is_ok(),
              static_cast<unsigned long long>(channel.total_bytes()));

  channel.reset();
  auto id = client.insert(fh.value(), to_bytes("fresh item"));
  std::printf("insert: ok=%d, new id=%llu, %llu bytes exchanged\n",
              id.is_ok(), static_cast<unsigned long long>(id.value()),
              static_cast<unsigned long long>(channel.total_bytes()));

  // Verify over the wire that the deleted item is gone and others are fine.
  const bool deleted_gone =
      !client.access(fh.value(), proto::ItemRef::id(777)).is_ok();
  const bool other_fine =
      client.access(fh.value(), proto::ItemRef::id(778)).is_ok();
  std::printf("deleted gone: %s; neighbour intact: %s\n",
              deleted_gone ? "yes" : "NO (bug)",
              other_fine ? "yes" : "NO (bug)");

  tcp.stop();
  std::printf("done.\n");
  return deleted_gone && other_fine ? 0 : 1;
}
